"""Checked simulation mode: invariant sanitizer + differential oracle.

The fused columnar kernel in :mod:`repro.cpu.timing` and the MSHR /
fill-queue fast paths in :mod:`repro.cache` are hand-specialized code —
exactly the kind that can drift silently from the model they were
specialized from.  This package is a sanitizer for them, in the
ASan/TSan sense: an *opt-in* mode that revalidates the simulator
against its own specification while it runs.

Two layers:

* **Invariant sanitizer** (:mod:`repro.check.invariants`) — structural
  assertions evaluated at sampled access boundaries: tag uniqueness
  per set, MSHR occupancy and completion bookkeeping, LRU recency
  consistency, stats conservation laws, and the paper's security
  invariants (a NOFILL miss never allocates, Section IV-B; every
  random fill offset lands inside ``[-a, b]``, Table II), with an
  optional chi-square uniformity self-test over each window.
* **Differential oracle** (:mod:`repro.check.reference` driven by
  :mod:`repro.check.oracle`) — a deliberately naive, dict-based
  reference interpreter run in lockstep with the fused fast path,
  diffing full cache state and stat counters every ``rate`` accesses.

Any divergence raises a structured :exc:`CheckViolation` carrying the
access index, the minimal state delta, and the spec repr needed to
reproduce it.

Activation: ``REPRO_CHECK=1`` in the environment (or ``--check[=RATE]``
on the ``sweep``/``leakage`` CLIs, which sets the variable so worker
processes inherit it).  ``REPRO_CHECK=0`` / unset means off; ``1``
means the default sampling rate (one full validation every
:data:`DEFAULT_RATE` accesses); any larger integer is used as the rate
directly.  When off, the only cost on the simulation hot path is one
module-attribute load per ``TimingModel.run`` call.
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple

__all__ = [
    "CheckViolation",
    "Checker",
    "DEFAULT_RATE",
    "ENV_VAR",
    "active_checker",
    "check_rate_from_env",
    "check_totals",
    "checked",
    "checked_from_env",
    "install_checker",
    "parse_check_value",
    "uninstall_checker",
]

#: Environment variable that switches checked mode on.
ENV_VAR = "REPRO_CHECK"

#: Default sampling rate: one oracle sync / invariant sweep per this
#: many accesses.  ``REPRO_CHECK=1`` selects it; ``REPRO_CHECK=N`` for
#: ``N > 1`` overrides it.
DEFAULT_RATE = 1024

#: Chi-square uniformity test parameters: skip windows with fewer than
#: this many draws (or fewer than 5 expected per bin), and use a
#: one-sided normal quantile of ~1e-6 so a healthy RNG essentially
#: never trips the gate.
MIN_CHI2_SAMPLES = 2000
CHI2_Z = 4.75


def _shorten(text: str, limit: int = 240) -> str:
    if len(text) <= limit:
        return text
    return text[: limit - 3] + "..."


class CheckViolation(AssertionError):
    """A checked-mode assertion failed.

    Structured so the failure can be acted on programmatically and
    survives pickling across the worker pool boundary:

    * ``kind``     — short category (``"oracle-state"``, ``"mshr"``,
      ``"window-bounds"``, ``"stats"``, ``"uniformity"``, ...);
    * ``where``    — which component tripped (``"l1.tag_store"``, ...);
    * ``detail``   — human-readable description of the minimal delta;
    * ``index``    — access index within the run, when known;
    * ``expected`` / ``actual`` — reference vs. fast-path values
      (pre-shortened reprs);
    * ``spec``     — repr of the cell spec / configuration needed to
      reproduce the run.
    """

    def __init__(self, kind: str, where: str, detail: str,
                 index: Optional[int] = None, expected: Optional[str] = None,
                 actual: Optional[str] = None, spec: str = ""):
        self.kind = kind
        self.where = where
        self.detail = detail
        self.index = index
        self.expected = expected
        self.actual = actual
        self.spec = spec
        super().__init__(self._format())

    def _format(self) -> str:
        parts = [f"[{self.kind}] {self.where}: {self.detail}"]
        if self.index is not None:
            parts.append(f"at access {self.index}")
        if self.expected is not None:
            parts.append(f"expected {self.expected}")
        if self.actual is not None:
            parts.append(f"actual {self.actual}")
        if self.spec:
            parts.append(f"spec {self.spec}")
        return " | ".join(parts)

    def with_spec(self, spec: str) -> "CheckViolation":
        """Return a copy carrying ``spec`` (no-op if already set)."""
        if self.spec or not spec:
            return self
        return CheckViolation(self.kind, self.where, self.detail,
                              index=self.index, expected=self.expected,
                              actual=self.actual, spec=_shorten(spec))

    def __reduce__(self):
        return (type(self), (self.kind, self.where, self.detail, self.index,
                             self.expected, self.actual, self.spec))


def parse_check_value(raw: str) -> Optional[int]:
    """Parse a ``REPRO_CHECK`` / ``--check`` value into a rate (or None).

    ``""``/``"0"`` mean off; ``"1"`` means :data:`DEFAULT_RATE`; any
    larger integer is the sampling rate itself.  Anything else is
    rejected loudly — a typo must not silently disable checking.
    """
    raw = raw.strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{ENV_VAR} must be an integer (0=off, 1=default rate, "
            f"N>1=check every N accesses), got {raw!r}"
        ) from None
    if value < 0:
        raise ValueError(f"{ENV_VAR} must be >= 0, got {value}")
    if value == 0:
        return None
    return DEFAULT_RATE if value == 1 else value


def check_rate_from_env() -> Optional[int]:
    """Sampling rate requested via :data:`ENV_VAR`, or None when off."""
    return parse_check_value(os.environ.get(ENV_VAR, ""))


class Checker:
    """Per-activation state: sampling rate, counters, offset histograms.

    ``checks_run`` counts validation events (one oracle sync or one
    invariant sweep each); ``violations`` counts raised
    :exc:`CheckViolation`\\ s.  Offset histograms accumulate every
    random-fill draw per ``(a, b)`` window for the chi-square
    uniformity self-test run by :meth:`finalize`.
    """

    def __init__(self, rate: int = DEFAULT_RATE, chi_square: bool = True):
        if rate < 1:
            raise ValueError(f"check rate must be >= 1, got {rate}")
        self.rate = rate
        self.chi_square = chi_square
        self.checks_run = 0
        self.violations = 0
        self._offsets: Dict[Tuple[int, int], Dict[int, int]] = {}
        # Functional models (leakage / attack trial loops) sample much
        # coarser-grained events than the timing kernel, so their
        # period is a fraction of the access-level rate.
        self._store_period = max(1, rate // 16)
        self._store_countdown = self._store_period

    # -- random fill window checks ----------------------------------------

    def note_offset(self, offset: int, a: int, b: int) -> None:
        """Record one random-fill draw; reject out-of-window offsets.

        Table II: with range registers ``(a, b)`` every fill must land
        in ``[i - a, i + b]``, i.e. ``offset`` in ``[-a, b]``.
        """
        if offset < -a or offset > b:
            self.violations += 1
            raise CheckViolation(
                "window-bounds", "random_fill",
                f"fill offset {offset} outside window [-{a}, {b}]",
            )
        hist = self._offsets.get((a, b))
        if hist is None:
            hist = self._offsets[(a, b)] = {}
        hist[offset] = hist.get(offset, 0) + 1

    # -- sampled structural checks ----------------------------------------

    def maybe_validate_store(self, store, where: str = "tag-store") -> None:
        """Sampled tag-store sweep for functional trial loops."""
        self._store_countdown -= 1
        if self._store_countdown > 0:
            return
        self._store_countdown = self._store_period
        from repro.check import invariants

        self.checks_run += 1
        try:
            invariants.validate_tag_store(store, where=where)
        except CheckViolation:
            self.violations += 1
            raise

    def validate_l1(self, l1, index: Optional[int] = None) -> None:
        """Full L1 invariant sweep (tag store, MSHR, queue, stats)."""
        from repro.check import invariants

        self.checks_run += 1
        try:
            invariants.validate_l1(l1, index=index)
        except CheckViolation:
            self.violations += 1
            raise

    # -- finalization ------------------------------------------------------

    def finalize(self) -> None:
        """Chi-square uniformity self-test over each window histogram.

        The Figure 4 datapath draws ``(rand & mask) - a`` for
        power-of-two windows and a rejection-free ``randrange``
        otherwise — both exactly uniform over ``W = a + b + 1`` bins —
        so a significant chi-square statistic means the draw path is
        biased or the mask/offset constants have drifted.
        """
        if not self.chi_square:
            return
        for (a, b), hist in sorted(self._offsets.items()):
            size = a + b + 1
            if size < 2:
                continue
            total = sum(hist.values())
            if total < max(MIN_CHI2_SAMPLES, 5 * size):
                continue
            expected = total / size
            chi2 = sum(
                (hist.get(offset, 0) - expected) ** 2 / expected
                for offset in range(-a, b + 1)
            )
            df = size - 1
            # Wilson-Hilferty approximation of the chi-square quantile.
            term = 1.0 - 2.0 / (9.0 * df) + CHI2_Z * math.sqrt(2.0 / (9.0 * df))
            critical = df * term**3
            if chi2 > critical:
                self.violations += 1
                raise CheckViolation(
                    "uniformity", f"window[-{a},{b}]",
                    f"chi-square {chi2:.1f} exceeds critical {critical:.1f} "
                    f"(df={df}, n={total})",
                )


# -- global activation --------------------------------------------------------

#: The installed checker, or None.  ``TimingModel.run`` reads this via
#: :func:`active_checker` once per run — the entire off-mode cost.
_ACTIVE: Optional[Checker] = None

#: Process-lifetime totals across uninstalled checkers (surfaced in
#: worker metadata and ``last_run_stats``).
_TOTALS = {"checks_run": 0, "violations": 0}

_PATCH_STATE = None


def active_checker() -> Optional[Checker]:
    return _ACTIVE


def check_totals() -> Dict[str, int]:
    """Process-lifetime ``checks_run`` / ``violations`` totals."""
    totals = dict(_TOTALS)
    if _ACTIVE is not None:
        totals["checks_run"] += _ACTIVE.checks_run
        totals["violations"] += _ACTIVE.violations
    return totals


def _apply_patches(checker: Checker) -> None:
    """Wrap the random-fill draw paths so every offset is validated.

    Class-level wraps (restored on uninstall): the engine's
    ``random_offset`` covers the generic timing path, the functional
    model's ``_draw_offset`` covers the leakage/attack models.  The
    fused kind-2 kernel draws from the RNG buffer directly; its draws
    are validated by the differential oracle instead.
    """
    global _PATCH_STATE
    from repro.analysis.hit_probability import FunctionalRandomFillCache
    from repro.core.engine import RandomFillEngine

    orig_engine = RandomFillEngine.random_offset
    orig_functional = FunctionalRandomFillCache._draw_offset

    def random_offset(self, thread_id, _orig=orig_engine, _checker=checker):
        offset = _orig(self, thread_id)
        window = self.window_for(thread_id)
        _checker.note_offset(offset, window.a, window.b)
        return offset

    def _draw_offset(self, _orig=orig_functional, _checker=checker):
        offset = _orig(self)
        window = self.window
        _checker.note_offset(offset, window.a, window.b)
        return offset

    RandomFillEngine.random_offset = random_offset
    FunctionalRandomFillCache._draw_offset = _draw_offset
    _PATCH_STATE = (
        (RandomFillEngine, "random_offset", orig_engine),
        (FunctionalRandomFillCache, "_draw_offset", orig_functional),
    )


def _remove_patches() -> None:
    global _PATCH_STATE
    if _PATCH_STATE is None:
        return
    for cls, name, original in _PATCH_STATE:
        setattr(cls, name, original)
    _PATCH_STATE = None


def install_checker(checker: Checker) -> Checker:
    """Activate ``checker`` process-wide (one at a time)."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a checker is already installed")
    _apply_patches(checker)
    _ACTIVE = checker
    return checker


def uninstall_checker(finalize: bool = True) -> Optional[Checker]:
    """Deactivate the current checker; optionally run its finalize pass.

    ``finalize=False`` skips the chi-square self-test — used when the
    checked body already raised, so a marginal histogram cannot mask
    the original violation.
    """
    global _ACTIVE
    checker = _ACTIVE
    if checker is None:
        return None
    _remove_patches()
    _ACTIVE = None
    try:
        if finalize:
            checker.finalize()
    finally:
        _TOTALS["checks_run"] += checker.checks_run
        _TOTALS["violations"] += checker.violations
    return checker


@contextmanager
def checked(rate: int = DEFAULT_RATE,
            chi_square: bool = True) -> Iterator[Checker]:
    """Run the body in checked mode; uninstall on the way out."""
    checker = install_checker(Checker(rate=rate, chi_square=chi_square))
    completed = False
    try:
        yield checker
        completed = True
    finally:
        uninstall_checker(finalize=completed)


@contextmanager
def checked_from_env() -> Iterator[Optional[Checker]]:
    """:func:`checked` gated on :data:`ENV_VAR`; yields None when off."""
    rate = check_rate_from_env()
    if rate is None:
        yield None
        return
    with checked(rate=rate) as checker:
        yield checker
