"""Tests for scheme construction."""

import pytest

from repro.cache.controller import DemandFetchPolicy
from repro.core.policy import RandomFillPolicy
from repro.core.window import RandomFillWindow
from repro.crypto.traced_aes import AesMemoryLayout
from repro.experiments.config import BASELINE_CONFIG
from repro.experiments.schemes import SCHEME_NAMES, build_scheme
from repro.prefetch.tagged import TaggedPrefetchPolicy
from repro.secure.newcache import Newcache
from repro.secure.nocache import DisableCachePolicy
from repro.secure.plcache import PLCache


PROTECTED = AesMemoryLayout().enc_regions()


class TestBuildScheme:
    def test_all_schemes_build(self):
        for name in SCHEME_NAMES:
            scheme = build_scheme(name, BASELINE_CONFIG, seed=1,
                                  protected=PROTECTED)
            assert scheme.l1 is not None
            assert scheme.name == name

    def test_unknown_scheme(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            build_scheme("magic", BASELINE_CONFIG)

    def test_baseline_demand_fetch(self):
        scheme = build_scheme("baseline", BASELINE_CONFIG)
        assert isinstance(scheme.l1.policy, DemandFetchPolicy)
        assert scheme.os is None

    def test_random_fill_wiring(self):
        window = RandomFillWindow(16, 15)
        scheme = build_scheme("random_fill", BASELINE_CONFIG, seed=1,
                              window=window)
        assert isinstance(scheme.l1.policy, RandomFillPolicy)
        assert scheme.os.engine.window_for(0) == window

    def test_random_fill_newcache_substrate(self):
        scheme = build_scheme("random_fill_newcache", BASELINE_CONFIG, seed=1)
        assert isinstance(scheme.l1.tag_store, Newcache)
        assert isinstance(scheme.l1.policy, RandomFillPolicy)

    def test_plcache_substrate(self):
        scheme = build_scheme("plcache_preload", BASELINE_CONFIG,
                              protected=PROTECTED)
        assert isinstance(scheme.l1.tag_store, PLCache)

    def test_disable_cache_needs_regions(self):
        with pytest.raises(ValueError):
            build_scheme("disable_cache", BASELINE_CONFIG)
        scheme = build_scheme("disable_cache", BASELINE_CONFIG,
                              protected=PROTECTED)
        assert isinstance(scheme.l1.policy, DisableCachePolicy)

    def test_tagged_prefetch_attached(self):
        scheme = build_scheme("tagged_prefetch", BASELINE_CONFIG)
        assert isinstance(scheme.l1.policy, TaggedPrefetchPolicy)
        assert scheme.l1.policy._controller is scheme.l1

    def test_window_on_demand_scheme_rejected(self):
        with pytest.raises(ValueError):
            build_scheme("baseline", BASELINE_CONFIG,
                         window=RandomFillWindow(4, 3))

    def test_geometry_follows_config(self):
        cfg = BASELINE_CONFIG.with_l1d(8 * 1024, 2)
        scheme = build_scheme("baseline", cfg)
        assert scheme.l1.tag_store.capacity_lines == 8 * 1024 // 64


class TestPrepare:
    def test_plcache_prepare_preloads_and_locks(self):
        scheme = build_scheme("plcache_preload", BASELINE_CONFIG,
                              protected=PROTECTED)
        end = scheme.prepare()
        scheme.l1.settle()
        assert end > 0
        locked = scheme.l1.tag_store.locked_lines()
        assert len(locked) == PROTECTED.num_lines

    def test_other_schemes_prepare_noop(self):
        scheme = build_scheme("baseline", BASELINE_CONFIG)
        assert scheme.prepare() == 0

    def test_set_window_requires_engine(self):
        scheme = build_scheme("baseline", BASELINE_CONFIG)
        with pytest.raises(ValueError):
            scheme.set_window(RandomFillWindow(4, 3))
