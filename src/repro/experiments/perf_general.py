"""General-program performance: Figures 9, 10 and the Section VII
prefetcher comparison.

Figure 9 profiles Eff(d) — the fraction of randomly filled lines at
offset ``d`` referenced before eviction.  Figure 10 sweeps forward and
bidirectional windows over the SPEC-like benchmarks and reports L1 MPKI
and IPC (random fill enabled for *all* accesses, as the paper does by
setting the range registers at program start).  Section VII compares
the best random fill window against a tagged next-line prefetcher on
the streaming benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.profiling import ProfileResult, profile_reference_ratio
from repro.core.window import RandomFillWindow
from repro.cpu.timing import SimResult, TimingModel
from repro.experiments.config import BASELINE_CONFIG, SimulatorConfig
from repro.experiments.schemes import build_scheme
from repro.workloads.spec import FIGURE8_ORDER, make_workload

#: Figure 10's window sweep: [0,0] is demand fetch; [0,b] forward;
#: [-a,b] bidirectional.
FIGURE10_WINDOWS: Tuple[Tuple[int, int], ...] = (
    (0, 0), (0, 1), (0, 3), (0, 7), (0, 15), (0, 31),
    (1, 0), (2, 1), (4, 3), (8, 7), (16, 15),
)

FIGURE10_ORDER = ("astar", "bzip2", "h264ref", "sjeng",
                  "milc", "hmmer", "lbm", "libquantum")


def window_label(a: int, b: int) -> str:
    return f"[{-a},{b}]"


def figure9(benchmarks: Sequence[str] = FIGURE10_ORDER,
            n_refs: int = 100_000,
            window: RandomFillWindow = RandomFillWindow(16, 15),
            config: SimulatorConfig = BASELINE_CONFIG,
            seed: int = 0) -> Dict[str, ProfileResult]:
    """Eff(d) profiles per benchmark (Figure 9)."""
    profiles: Dict[str, ProfileResult] = {}
    for benchmark in benchmarks:
        trace = make_workload(benchmark, n_refs=n_refs, seed=seed)
        profiles[benchmark] = profile_reference_ratio(
            trace, window,
            l1_size=config.l1d_size, l1_assoc=config.l1d_assoc,
            line_size=config.line_size, seed=seed)
    return profiles


@dataclass
class GeneralPerfPoint:
    benchmark: str
    window: Tuple[int, int]          # (a, b)
    result: SimResult
    normalized_ipc: float = 0.0

    @property
    def label(self) -> str:
        return window_label(*self.window)


def warm_l2(scheme, trace) -> None:
    """Pre-warm the L2 with a trace prefix's line footprint.

    The paper's SPEC runs cover two billion instructions, so the L2 is
    in steady state for virtually the whole measurement.  Our traces
    are shorter, so the measured portion is preceded by a warm-up
    prefix that is replayed functionally into the L2: reused working
    sets become resident (as they would be), while touch-once streams
    leave the yet-unvisited region cold (as it would be).
    """
    store = scheme.hierarchy.l2.tag_store
    line_bits = scheme.config.line_size.bit_length() - 1
    seen_last = -1
    for addr, _gap, _write in trace:
        line = addr >> line_bits
        if line == seen_last:
            continue
        seen_last = line
        if not store.access(line):
            store.fill(line)


def run_general_workload(benchmark: str, window: Tuple[int, int],
                         config: SimulatorConfig = BASELINE_CONFIG,
                         n_refs: int = 100_000, seed: int = 0,
                         scheme_name: str = "random_fill",
                         trace=None, warm: bool = True) -> SimResult:
    """One benchmark x window cell of Figure 10.

    "We insert the system call for setting the range registers ... at
    the beginning of the program, which essentially enables random fill
    for all the memory accesses."
    """
    a, b = window
    scheme = build_scheme(scheme_name, config, seed=seed)
    if scheme.os is not None:
        scheme.os.set_rr(a, b)
    if trace is None:
        trace = make_workload(benchmark, n_refs=n_refs, seed=seed)
    if warm:
        # Warm on the first half, measure the second — reused working
        # sets are resident, touch-once stream fronts stay cold.
        split = len(trace) // 2
        warm_l2(scheme, trace[:split])
        trace = trace[split:]
    timing = TimingModel(scheme.l1, issue_width=config.issue_width,
                         overlap_credit=config.overlap_credit)
    return timing.run(trace)


def figure10(benchmarks: Sequence[str] = FIGURE10_ORDER,
             windows: Sequence[Tuple[int, int]] = FIGURE10_WINDOWS,
             config: SimulatorConfig = BASELINE_CONFIG,
             n_refs: int = 100_000,
             seed: int = 0) -> List[GeneralPerfPoint]:
    """The Figure 10 sweep: L1 MPKI and IPC per benchmark per window."""
    points: List[GeneralPerfPoint] = []
    for benchmark in benchmarks:
        trace = make_workload(benchmark, n_refs=n_refs, seed=seed)
        base_ipc: Optional[float] = None
        for window in windows:
            result = run_general_workload(benchmark, window, config=config,
                                          seed=seed, trace=trace)
            if base_ipc is None:
                base_ipc = result.ipc
            points.append(GeneralPerfPoint(
                benchmark=benchmark, window=window, result=result,
                normalized_ipc=result.ipc / base_ipc))
    return points


def prefetcher_comparison(benchmarks: Sequence[str] = ("lbm", "libquantum"),
                          best_windows: Dict[str, Tuple[int, int]] = None,
                          config: SimulatorConfig = BASELINE_CONFIG,
                          n_refs: int = 100_000,
                          seed: int = 0) -> List[Dict[str, float]]:
    """Section VII: tagged prefetcher vs random fill on streaming apps.

    The paper: tagged prefetcher improves IPC by 11% (lbm) / 26%
    (libquantum); random fill by 17% / 57% (libquantum's best window is
    [0, 15]).
    """
    if best_windows is None:
        best_windows = {"lbm": (0, 15), "libquantum": (0, 15)}
    rows: List[Dict[str, float]] = []
    for benchmark in benchmarks:
        trace = make_workload(benchmark, n_refs=n_refs, seed=seed)
        base = run_general_workload(benchmark, (0, 0), config=config,
                                    seed=seed, trace=trace)
        tagged = run_general_workload(benchmark, (0, 0), config=config,
                                      seed=seed, trace=trace,
                                      scheme_name="tagged_prefetch")
        rf = run_general_workload(benchmark, best_windows[benchmark],
                                  config=config, seed=seed, trace=trace)
        rows.append({
            "benchmark": benchmark,
            "baseline_ipc": base.ipc,
            "tagged_speedup": tagged.ipc / base.ipc,
            "random_fill_speedup": rf.ipc / base.ipc,
            "baseline_l1_mpki": base.l1_mpki,
            "random_fill_l1_mpki": rf.l1_mpki,
            "baseline_l2_mpki": base.l2_mpki,
            "random_fill_l2_mpki": rf.l2_mpki,
        })
    return rows
