"""Memory reference trace format.

The timing model consumes *trace records*.  A record is a plain tuple::

    (byte_addr, gap, write)

* ``byte_addr`` — the referenced byte address,
* ``gap``       — instructions executed since the previous record,
                  *including* this memory instruction (>= 1),
* ``write``     — 1 for a store, 0 for a load.

``MemRef`` is a readable constructor/inspector for the same shape; it IS
a tuple (``typing.NamedTuple``), so record lists may mix both freely.

Multi-million reference runs do not want a Python object per record, so
the canonical container is the columnar :class:`Trace`: three numpy
``int64`` columns (``addr``, ``gap``, ``write``) with

* O(1) ``len`` and (cached) ``instruction_count``,
* zero-copy slicing (``trace[split:]`` returns a view-backed ``Trace``),
* a stable content :attr:`~Trace.fingerprint` for content-addressed
  caching,
* backward-compatible record iteration — ``for addr, gap, write in
  trace`` yields plain int tuples, so every tuple-list consumer keeps
  working.

Workload generators emit ``Trace`` objects; ad-hoc lists of tuples
remain valid trace inputs everywhere (``TimingModel.run`` takes either).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, List, NamedTuple, Sequence, Tuple, Union

import numpy as np

TraceRecord = Tuple[int, int, int]

#: bump when the fingerprint serialization below changes
_FINGERPRINT_VERSION = 1


class MemRef(NamedTuple):
    """Readable trace record; interchangeable with the raw tuple form."""

    addr: int
    gap: int = 1
    write: int = 0


class Trace:
    """Columnar memory reference trace (numpy ``int64`` columns).

    Instances are immutable: the columns are marked read-only because a
    trace may be shared between many simulation cells through the trace
    cache.  Derived data (record materialization, per-geometry address
    decode, slices) is memoized on the instance so cells sweeping many
    windows over one trace share the work.
    """

    __slots__ = ("addr", "gap", "write", "_instructions", "_fingerprint",
                 "_memo")

    def __init__(self, addr: np.ndarray, gap: np.ndarray, write: np.ndarray):
        if not (len(addr) == len(gap) == len(write)):
            raise ValueError(
                f"column lengths differ: {len(addr)}/{len(gap)}/{len(write)}")
        self.addr = self._column(addr)
        self.gap = self._column(gap)
        self.write = self._column(write)
        self._instructions: "int | None" = None
        self._fingerprint: "str | None" = None
        self._memo: dict = {}

    @staticmethod
    def _column(values) -> np.ndarray:
        column = np.asarray(values, dtype=np.int64)
        if column.ndim != 1:
            raise ValueError(f"trace column must be 1-D, got {column.ndim}-D")
        if column.flags.writeable:
            # Views of read-only parents (slices) are already protected.
            column = np.ascontiguousarray(column)
            column.flags.writeable = False
        return column

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_records(cls, records: Iterable[TraceRecord]) -> "Trace":
        """Build a columnar trace from ``(addr, gap, write)`` records."""
        if isinstance(records, Trace):
            return records
        records = list(records)
        if not records:
            empty = np.empty(0, dtype=np.int64)
            return cls(empty, empty.copy(), empty.copy())
        table = np.asarray(records, dtype=np.int64)
        if table.ndim != 2 or table.shape[1] != 3:
            raise ValueError(
                f"records must be (addr, gap, write) triples, "
                f"got shape {table.shape}")
        return cls(np.ascontiguousarray(table[:, 0]),
                   np.ascontiguousarray(table[:, 1]),
                   np.ascontiguousarray(table[:, 2]))

    @classmethod
    def from_columns(cls, addr, gap, write) -> "Trace":
        """Build a trace from three parallel columns (lists or arrays)."""
        return cls(np.asarray(addr, dtype=np.int64),
                   np.asarray(gap, dtype=np.int64),
                   np.asarray(write, dtype=np.int64))

    @classmethod
    def concat(cls, chunks: Sequence[Union["Trace", Sequence[TraceRecord]]]
               ) -> "Trace":
        """Concatenate traces and/or record lists into one trace."""
        parts = [chunk if isinstance(chunk, Trace) else cls.from_records(chunk)
                 for chunk in chunks]
        if not parts:
            return cls.from_records([])
        if len(parts) == 1:
            return parts[0]
        return cls(np.concatenate([p.addr for p in parts]),
                   np.concatenate([p.gap for p in parts]),
                   np.concatenate([p.write for p in parts]))

    # -- sequence protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.addr)

    def __iter__(self) -> Iterator[TraceRecord]:
        # tolist() converts whole columns to plain ints in C; zip then
        # yields ordinary tuples, so tuple-list consumers are oblivious.
        return iter(zip(self.addr.tolist(), self.gap.tolist(),
                        self.write.tolist()))

    def __getitem__(self, index):
        if isinstance(index, slice):
            key = ("slice", index.start, index.stop, index.step)
            memo = self._memo
            view = memo.get(key)
            if view is None:
                view = Trace(self.addr[index], self.gap[index],
                             self.write[index])
                memo[key] = view
            return view
        return (int(self.addr[index]), int(self.gap[index]),
                int(self.write[index]))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Trace):
            return (np.array_equal(self.addr, other.addr)
                    and np.array_equal(self.gap, other.gap)
                    and np.array_equal(self.write, other.write))
        if isinstance(other, (list, tuple)):
            return len(other) == len(self) and self.records() == list(other)
        return NotImplemented

    __hash__ = None  # mutable-adjacent container semantics, like list

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Trace(n={len(self)}, "
                f"instructions={self.instruction_count})")

    # -- derived data --------------------------------------------------------

    @property
    def instruction_count(self) -> int:
        """Total instructions (sum of gaps); cached, O(1) thereafter."""
        if self._instructions is None:
            self._instructions = int(self.gap.sum()) if len(self) else 0
        return self._instructions

    @property
    def fingerprint(self) -> str:
        """Stable content hash (sha256 hex) of the three columns."""
        if self._fingerprint is None:
            digest = hashlib.sha256()
            digest.update(f"trace:v{_FINGERPRINT_VERSION}:{len(self)}|"
                          .encode("ascii"))
            digest.update(np.ascontiguousarray(self.addr).tobytes())
            digest.update(np.ascontiguousarray(self.gap).tobytes())
            digest.update(np.ascontiguousarray(self.write).tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def records(self) -> List[TraceRecord]:
        """Materialized list of record tuples (memoized)."""
        memoed = self._memo.get("records")
        if memoed is None:
            memoed = list(zip(self.addr.tolist(), self.gap.tolist(),
                              self.write.tolist()))
            self._memo["records"] = memoed
        return memoed

    def decoded(self, line_shift: int):
        """Pre-decoded address columns for one cache geometry (memoized).

        See :class:`repro.cpu.decode.TraceDecode` — one vectorized pass
        computes every record's line address; set indices, tags and
        issue-cycle increments are derived (and memoized) on demand.
        """
        key = ("decode", line_shift)
        decode = self._memo.get(key)
        if decode is None:
            from repro.cpu.decode import TraceDecode
            decode = TraceDecode(self, line_shift)
            self._memo[key] = decode
        return decode


def validate_trace(trace: Iterable[TraceRecord]) -> Iterator[TraceRecord]:
    """Yield records, raising on malformed ones (used in tests/debug)."""
    for i, record in enumerate(trace):
        if len(record) != 3:
            raise ValueError(f"record {i} has {len(record)} fields, want 3")
        addr, gap, write = record
        if addr < 0:
            raise ValueError(f"record {i}: negative address {addr}")
        if gap < 1:
            raise ValueError(f"record {i}: gap must be >= 1, got {gap}")
        if write not in (0, 1):
            raise ValueError(f"record {i}: write flag must be 0/1, got {write}")
        yield record


def instruction_count(trace: Iterable[TraceRecord]) -> int:
    """Total instructions represented by a trace (sum of gaps).

    O(1) for a columnar :class:`Trace` (after its first call), O(n) for
    record iterables.
    """
    if isinstance(trace, Trace):
        return trace.instruction_count
    return sum(gap for _, gap, _ in trace)


def materialize(trace: Iterable[TraceRecord]) -> List[TraceRecord]:
    """Force a generator trace into a list (for reuse across schemes)."""
    if isinstance(trace, Trace):
        return trace.records()
    return list(trace)
