"""Section VII: random fill vs a tagged next-line prefetcher.

The paper: for the irregular streaming benchmarks the tagged prefetcher
improves IPC by 11% (lbm) / 26% (libquantum) while the random fill
cache improves it by 17% / 57% — design-for-security can beat a simple
prefetcher because the window covers irregular strides and fetches far
enough ahead to be timely.
"""

from _reporting import save_report

from repro.experiments.config import scaled
from repro.experiments.perf_general import prefetcher_comparison
from repro.util.tables import format_table


def run():
    return prefetcher_comparison(n_refs=scaled(150_000, minimum=15_000),
                                 seed=5)


def test_sec7_prefetcher_comparison(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    for row in rows:
        # Both help the streams...
        assert row["random_fill_speedup"] > 1.05
        # ...but random fill beats the tagged next-line prefetcher.
        assert row["random_fill_speedup"] > row["tagged_speedup"]
        # And the L1 MPKI reduction is real.
        assert row["random_fill_l1_mpki"] < row["baseline_l1_mpki"]

    save_report("sec7_prefetcher_comparison", format_table(
        ["benchmark", "tagged speedup", "random fill speedup",
         "L1 MPKI (base)", "L1 MPKI (rf)"],
        [(r["benchmark"], f"{r['tagged_speedup']:.3f}",
          f"{r['random_fill_speedup']:.3f}",
          f"{r['baseline_l1_mpki']:.1f}",
          f"{r['random_fill_l1_mpki']:.1f}") for r in rows],
        title=("Section VII: tagged prefetcher vs random fill on the "
               "streaming benchmarks")))
