"""Tests for text-table rendering."""

import pytest

from repro.util.tables import format_table


def test_basic_rendering():
    out = format_table(["a", "bb"], [[1, 2], [30, 4]])
    lines = out.splitlines()
    assert lines[0].startswith("a")
    assert "30" in lines[3]


def test_title_included():
    out = format_table(["x"], [[1]], title="Table III")
    assert out.splitlines()[0] == "Table III"


def test_column_alignment():
    out = format_table(["col"], [["short"], ["much longer cell"]])
    header, rule, *rows = out.splitlines()
    assert len(rule) == len("much longer cell")


def test_float_formatting():
    out = format_table(["v"], [[0.123456789]])
    assert "0.1235" in out


def test_row_width_mismatch_raises():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])


def test_empty_rows_ok():
    out = format_table(["a"], [])
    assert "a" in out
