"""Named cache schemes: everything the paper's figures compare.

A *scheme* is a fully wired memory hierarchy plus the control knobs the
experiment needs (the random-fill OS layer, the preload routine, the
protected regions).  :func:`build_scheme` is the single entry point the
experiment runners and benches use.

Scheme names (the legend entries of Figures 6-8):

* ``baseline``              — demand-fetch set-associative L1 (Table IV)
* ``random_fill``           — the paper's contribution on an SA L1
* ``newcache``              — demand-fetch Newcache L1
* ``random_fill_newcache``  — random fill built on Newcache
* ``plcache_preload``       — PLcache with preloaded + locked tables
* ``disable_cache``         — L1 bypass for security-critical accesses
* ``tagged_prefetch``       — demand fetch + tagged next-line prefetcher
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.controller import DemandFetchPolicy, L1Controller
from repro.cache.hierarchy import Hierarchy, build_hierarchy
from repro.cache.context import AccessContext
from repro.core.engine import RandomFillEngine
from repro.core.policy import RandomFillPolicy
from repro.core.syscalls import RandomFillOS
from repro.core.window import RandomFillWindow, validate_window
from repro.experiments.config import SimulatorConfig
from repro.prefetch.tagged import TaggedPrefetchPolicy
from repro.secure.newcache import Newcache
from repro.secure.nocache import DisableCachePolicy
from repro.secure.plcache import PLCache, preload_and_lock
from repro.secure.region import RegionSet
from repro.util.rng import HardwareRng, derive_seed

SCHEME_NAMES = (
    "baseline",
    "random_fill",
    "newcache",
    "random_fill_newcache",
    "plcache_preload",
    "disable_cache",
    "tagged_prefetch",
)


@dataclass
class Scheme:
    """A built scheme, ready to run traces through."""

    name: str
    hierarchy: Hierarchy
    config: SimulatorConfig
    os: Optional[RandomFillOS] = None
    protected: Optional[RegionSet] = None

    @property
    def l1(self) -> L1Controller:
        return self.hierarchy.l1

    def set_window(self, window: RandomFillWindow, thread_id: int = 0) -> None:
        """Program the thread's range registers (Table II system call)."""
        if self.os is None:
            raise ValueError(f"scheme {self.name!r} has no random fill engine")
        validate_window(
            window,
            capacity_lines=getattr(self.l1.tag_store, "capacity_lines", None),
            where=f"scheme {self.name!r}")
        self.os.set_rr(window.a, window.b, thread_id)

    def prepare(self, now: int = 0,
                ctx: AccessContext = AccessContext()) -> int:
        """Run the scheme's setup routine (PLcache preload); returns the
        cycle at which setup finished (charged to the victim)."""
        if self.name == "plcache_preload":
            if self.protected is None:
                raise ValueError("plcache_preload needs protected regions")
            return preload_and_lock(self.l1, self.protected, ctx, now)
        return now


def build_scheme(name: str, config: SimulatorConfig,
                 seed: int = 0,
                 protected: Optional[RegionSet] = None,
                 window: Optional[RandomFillWindow] = None) -> Scheme:
    """Construct a named scheme.

    ``window`` applies to thread 0 of the random fill schemes (other
    threads can be configured afterwards via ``scheme.set_window``).
    ``protected`` is required by ``plcache_preload`` and
    ``disable_cache``.
    """
    if name not in SCHEME_NAMES:
        raise ValueError(f"unknown scheme {name!r}; known: {SCHEME_NAMES}")

    common = dict(
        l1_size=config.l1d_size, l1_assoc=config.l1d_assoc,
        line_size=config.line_size, l1_hit_latency=config.l1_hit_latency,
        l2_size=config.l2_size, l2_assoc=config.l2_assoc,
        l2_hit_latency=config.l2_hit_latency,
        mshr_entries=config.mshr_entries, dram_config=config.dram)

    os_layer: Optional[RandomFillOS] = None

    if name in ("random_fill", "random_fill_newcache"):
        engine = RandomFillEngine(HardwareRng(derive_seed(seed, name, "rng")))
        policy = RandomFillPolicy(engine)
        os_layer = RandomFillOS(engine)
        tag_store = None
        if name == "random_fill_newcache":
            tag_store = Newcache(
                config.l1d_size, config.line_size,
                extra_index_bits=config.newcache_extra_index_bits,
                seed=derive_seed(seed, name, "newcache"))
        hierarchy = build_hierarchy(l1_tag_store=tag_store, policy=policy,
                                    **common)
    elif name == "newcache":
        tag_store = Newcache(
            config.l1d_size, config.line_size,
            extra_index_bits=config.newcache_extra_index_bits,
            seed=derive_seed(seed, name, "newcache"))
        hierarchy = build_hierarchy(l1_tag_store=tag_store,
                                    policy=DemandFetchPolicy(), **common)
    elif name == "plcache_preload":
        tag_store = PLCache(config.l1d_size, config.l1d_assoc,
                            config.line_size)
        hierarchy = build_hierarchy(l1_tag_store=tag_store,
                                    policy=DemandFetchPolicy(), **common)
    elif name == "disable_cache":
        if protected is None:
            raise ValueError("disable_cache needs protected regions")
        hierarchy = build_hierarchy(policy=DisableCachePolicy(protected),
                                    **common)
    elif name == "tagged_prefetch":
        policy = TaggedPrefetchPolicy()
        hierarchy = build_hierarchy(policy=policy, **common)
        policy.attach(hierarchy.l1)
    else:  # baseline
        hierarchy = build_hierarchy(policy=DemandFetchPolicy(), **common)

    scheme = Scheme(name=name, hierarchy=hierarchy, config=config,
                    os=os_layer, protected=protected)
    if window is not None:
        if os_layer is not None:
            scheme.set_window(window)
        elif not window.disabled:
            raise ValueError(
                f"scheme {name!r} cannot honour a random fill window")
    return scheme
