"""Registry semantics: registration, lookup errors, capability flags.

The hypothesis permutation test pins the satellite requirement that
``SchemeSpec`` registration is order-independent: two registries
populated with the same specs in any order answer every query
identically (name sets per filter, ``get`` results, error text).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner.cells import CellSpec
from repro.schemes import (
    REGISTRY,
    SchemeRegistry,
    SchemeSpec,
    functional_scheme_names,
    get_scheme,
    random_fill_scheme_names,
    scheme_names,
    timing_scheme_names,
)
from repro.cpu.batch import lane_eligible

BUILTIN_SPECS = tuple(REGISTRY)

FILTERS = [
    {},
    {"functional": True},
    {"functional": False},
    {"timing": True},
    {"timing": False},
    {"random_fill": True},
    {"functional": True, "random_fill": False},
]


def _dummy_store(geometry):
    raise AssertionError("never built")


class TestOrderIndependence:
    @settings(max_examples=30, deadline=None)
    @given(order=st.permutations(list(BUILTIN_SPECS)))
    def test_lookups_ignore_registration_order(self, order):
        fresh = SchemeRegistry()
        for spec in order:
            fresh.register(spec)
        for filters in FILTERS:
            assert set(fresh.names(**filters)) == set(REGISTRY.names(**filters))
        for spec in BUILTIN_SPECS:
            assert fresh.get(spec.name) is REGISTRY.get(spec.name)
        with pytest.raises(ValueError) as fresh_err:
            fresh.get("no_such_scheme")
        with pytest.raises(ValueError) as canon_err:
            REGISTRY.get("no_such_scheme")
        assert str(fresh_err.value) == str(canon_err.value)


class TestRegistration:
    def test_duplicate_name_rejected(self):
        registry = SchemeRegistry()
        spec = SchemeSpec(name="dup", store_factory=_dummy_store)
        registry.register(spec)
        with pytest.raises(ValueError, match="already registered"):
            registry.register(SchemeSpec(name="dup", store_factory=_dummy_store))

    def test_name_must_be_identifier(self):
        with pytest.raises(ValueError, match="identifier"):
            SchemeSpec(name="not a name", store_factory=_dummy_store)
        with pytest.raises(ValueError, match="identifier"):
            SchemeSpec(name="", store_factory=_dummy_store)

    def test_unknown_fill_strategy_rejected(self):
        with pytest.raises(ValueError, match="fill strategy"):
            SchemeSpec(
                name="x", store_factory=_dummy_store, fill_strategy="psychic"
            )

    def test_factoryless_spec_rejected(self):
        with pytest.raises(ValueError, match="neither"):
            SchemeSpec(name="x")


class TestLookupErrors:
    def test_unknown_name_lists_registered_schemes(self):
        with pytest.raises(ValueError) as excinfo:
            get_scheme("l2")
        message = str(excinfo.value)
        assert "unknown scheme 'l2'" in message
        for name in scheme_names():
            assert name in message

    def test_functional_mismatch_lists_functional_schemes(self):
        # baseline is timing-only: asking for its leakage face must
        # name every scheme that does have one.
        with pytest.raises(ValueError) as excinfo:
            get_scheme("baseline", functional=True)
        message = str(excinfo.value)
        assert "functional" in message
        for name in functional_scheme_names():
            assert name in message

    def test_timing_mismatch_lists_timing_schemes(self):
        with pytest.raises(ValueError) as excinfo:
            get_scheme("rpcache", timing=True)
        message = str(excinfo.value)
        assert "timing" in message
        for name in timing_scheme_names():
            assert name in message


class TestBuiltinCatalogue:
    def test_functional_names(self):
        assert functional_scheme_names() == (
            "demand_fetch",
            "random_fill",
            "newcache",
            "random_fill_newcache",
            "rpcache",
            "plcache_preload",
            "skewed_random",
            "chameleon",
            "random_and_safe",
        )

    def test_timing_names(self):
        assert timing_scheme_names() == (
            "baseline",
            "random_fill",
            "newcache",
            "random_fill_newcache",
            "plcache_preload",
            "disable_cache",
            "tagged_prefetch",
            "skewed_random",
            "chameleon",
            "random_and_safe",
        )

    def test_random_fill_names(self):
        assert random_fill_scheme_names() == ("random_fill", "random_fill_newcache")

    def test_every_spec_has_a_summary(self):
        for spec in BUILTIN_SPECS:
            assert spec.summary, spec.name

    def test_custom_fill_implies_nofill_strategy(self):
        ras = get_scheme("random_and_safe")
        assert ras.has_custom_fill
        assert not ras.uses_window


class TestLaneFlags:
    """The declarative flags agree with the structural planner check."""

    def _cell(self, scheme, window):
        return CellSpec(
            kind="general", scheme=scheme, benchmark="astar", window=window
        )

    def test_flagged_schemes_lower(self):
        assert lane_eligible(self._cell("baseline", None))
        assert lane_eligible(self._cell("random_fill", (4, 3)))

    def test_pow2_window_only_gate(self):
        # (4, 2) is a 7-entry window: the fused kernel masks draws, so
        # the registry flag must keep the cell off the lane path.
        assert not lane_eligible(self._cell("random_fill", (4, 2)))

    def test_unflagged_schemes_do_not_lower(self):
        for name in ("newcache", "plcache_preload", "tagged_prefetch"):
            assert not lane_eligible(self._cell(name, None)), name

    def test_needs_protected_schemes_are_safely_ineligible(self):
        # The registry early-out must answer False without attempting a
        # build (these schemes cannot build without protected regions).
        for name in ("disable_cache", "random_and_safe"):
            assert not lane_eligible(self._cell(name, None)), name
