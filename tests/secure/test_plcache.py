"""Tests for PLcache and the preload routine."""

from repro.cache.context import AccessContext
from repro.cache.hierarchy import build_hierarchy
from repro.secure.plcache import PLCache, preload_and_lock
from repro.secure.region import ProtectedRegion, RegionSet


class TestPLCache:
    def test_locked_lines_listing(self):
        c = PLCache(4096, 4)
        c.fill(1, AccessContext(thread_id=1, lock=True))
        c.fill(2)
        assert c.locked_lines() == [1]

    def test_unlock_all(self):
        c = PLCache(4096, 4)
        c.fill(1, AccessContext(thread_id=1, lock=True))
        c.fill(2, AccessContext(thread_id=2, lock=True))
        c.unlock_all(1)
        assert c.locked_lines() == [2]

    def test_cross_process_cannot_evict_locked(self):
        c = PLCache(2 * 64, 2, 64)
        c.fill(0, AccessContext(thread_id=1, lock=True))
        c.fill(2, AccessContext(thread_id=1, lock=True))
        assert c.fill(4, AccessContext(thread_id=2)) is None
        assert c.probe(0) and c.probe(2)


class TestPreload:
    def test_preload_locks_every_table_line(self):
        h = build_hierarchy(l1_tag_store=PLCache(32 * 1024, 4))
        region = ProtectedRegion(0x10000, 1024)
        ctx = AccessContext(thread_id=0)
        end = preload_and_lock(h.l1, RegionSet([region]), ctx, now=0)
        h.l1.settle()
        assert end > 0
        store = h.l1.tag_store
        for line in region.lines:
            assert store.probe(line)
            assert store.line_state(line).locked

    def test_preload_returns_monotonic_time(self):
        h = build_hierarchy(l1_tag_store=PLCache(32 * 1024, 4))
        regions = RegionSet([ProtectedRegion(0x10000, 1024),
                             ProtectedRegion(0x20000, 1024)])
        end = preload_and_lock(h.l1, regions, AccessContext(), now=100)
        assert end > 100

    def test_preloaded_lines_survive_other_thread_traffic(self):
        h = build_hierarchy(l1_tag_store=PLCache(8 * 1024, 1))
        region = ProtectedRegion(0x10000, 1024)
        preload_and_lock(h.l1, RegionSet([region]), AccessContext(thread_id=1),
                         now=0)
        h.l1.settle()
        # another thread streams over conflicting addresses
        other = AccessContext(thread_id=2)
        now = 0
        for line in range(0x40000 // 64, 0x40000 // 64 + 512):
            r = h.l1.access(line * 64, now, other)
            now = r.ready_at
        h.l1.settle()
        for line in region.lines:
            assert h.l1.tag_store.probe(line)
