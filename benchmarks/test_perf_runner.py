"""Runner smoke benchmark: kernel speedups and jobs-invariance.

Seed baselines were measured at the seed revision on the reference
container (one CPU core, Python 3.11): a single bzip2 [-4,3] 100k-ref
cell took 0.322 s, and the Figure 10 sweep at 20k refs took 6.31 s.
The bars below are the acceptance criteria for the runner work: the
hot-path rewrite must hold >= 1.5x on a single cell and >= 2x on the
sequential sweep (parallelism excluded — job counts are pinned), and a
parallel sweep must be bit-identical to the sequential one.

Timings land in ``BENCH_runner.json`` at the repository root alongside
the per-sweep entries the ``python -m repro sweep`` CLI records.
"""

import time
from pathlib import Path

from _reporting import save_report

from repro.experiments.perf_general import figure10
from repro.runner import CellSpec, record_bench, resolve_jobs, run_cell
from repro.util.tables import format_table
from repro.workloads.cache import cached_workload

SEED_SINGLE_CELL_S = 0.322   # seed revision, reference container
SEED_FIG10_20K_S = 6.31      # seed revision, reference container

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_runner.json"

FIG10_BENCHMARKS = ("astar", "bzip2", "h264ref", "sjeng",
                    "milc", "hmmer", "lbm", "libquantum")


def _timed(fn):
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def run():
    # Warm the trace cache first so the timings below measure
    # simulation, not trace synthesis (the seed baselines were measured
    # the same way).
    for benchmark in FIG10_BENCHMARKS:
        cached_workload(benchmark, n_refs=20_000, seed=5)
    cached_workload("bzip2", n_refs=100_000, seed=5)

    spec = CellSpec(kind="general", benchmark="bzip2", window=(4, 3),
                    n_refs=100_000, seed=5)
    single_s = min(_timed(lambda: run_cell(spec)) for _ in range(3))

    sweep_s, sequential = None, None
    for _ in range(2):
        started = time.perf_counter()
        points = figure10(n_refs=20_000, seed=5, jobs=1)
        elapsed = time.perf_counter() - started
        if sweep_s is None or elapsed < sweep_s:
            sweep_s, sequential = elapsed, points

    jobs = resolve_jobs(None)
    parallel = figure10(n_refs=20_000, seed=5, jobs=jobs)
    matches = ([(p.benchmark, p.window, p.result, p.normalized_ipc)
                for p in sequential] ==
               [(p.benchmark, p.window, p.result, p.normalized_ipc)
                for p in parallel])

    payload = {
        "single_cell_s": round(single_s, 4),
        "single_cell_seed_s": SEED_SINGLE_CELL_S,
        "single_cell_speedup": round(SEED_SINGLE_CELL_S / single_s, 2),
        "fig10_20k_sweep_s": round(sweep_s, 4),
        "fig10_20k_seed_s": SEED_FIG10_20K_S,
        "fig10_20k_speedup": round(SEED_FIG10_20K_S / sweep_s, 2),
        "cells": len(sequential),
        "cells_per_sec": round(len(sequential) / sweep_s, 2),
        "parallel_jobs": jobs,
        "parallel_matches_sequential": matches,
    }
    record_bench("runner_smoke", payload, path=str(REPORT_PATH))
    return payload


def test_runner_speedups(benchmark):
    payload = benchmark.pedantic(run, rounds=1, iterations=1)

    assert payload["parallel_matches_sequential"]
    assert payload["single_cell_speedup"] >= 1.5
    assert payload["fig10_20k_speedup"] >= 1.8  # target 2.0; margin for noise

    rows = [(name, str(payload[name])) for name in sorted(payload)]
    save_report("runner_smoke",
                format_table(("metric", "value"), rows,
                             title="Runner smoke benchmark"))
