"""Table I: the four attack classes, each demonstrated live.

Contention based attacks (Prime-Probe, Evict-Time) succeed against the
conventional SA cache but fail against mapping randomization
(Newcache); reuse based attacks (Flush-Reload; the cache collision
attack is exercised at scale by the Figure 2 / Table III benches)
succeed against *every* demand-fetch design and fail against random
fill.
"""

from _reporting import save_report

from repro.attacks import (
    CLASSIFICATION,
    run_evict_time,
    run_flush_reload_trials,
    run_prime_probe_trials,
)
from repro.attacks.victim import TableLookupVictim
from repro.cache.hierarchy import build_hierarchy
from repro.cache.set_associative import SetAssociativeCache
from repro.core.window import RandomFillWindow
from repro.secure.newcache import Newcache
from repro.secure.region import ProtectedRegion
from repro.util.tables import format_table

REGION = ProtectedRegion(0x10000, 1024)


def run_demos():
    rows = []
    # Prime-Probe: contention, access-driven.
    pp_sa = run_prime_probe_trials(SetAssociativeCache(8 * 1024, 4), 32, 4,
                                   REGION, trials=150, seed=1)
    pp_nc = run_prime_probe_trials(Newcache(8 * 1024, seed=2), 32, 4,
                                   REGION, trials=150, seed=1)
    rows.append(("prime-probe (contention/access)",
                 f"SA accuracy {pp_sa.set_accuracy:.2f}",
                 f"Newcache accuracy {pp_nc.set_accuracy:.2f}"))
    # Evict-Time: contention, timing-driven.
    h = build_hierarchy(l1_size=4 * 1024, l1_assoc=1)
    et = run_evict_time(TableLookupVictim(h.l1, REGION, noise_refs=0, seed=1),
                        secret=5, num_sets=64, associativity=1,
                        trials_per_set=8, seed=2)
    rows.append(("evict-time (contention/timing)",
                 f"SA recovered set {et.inferred_set} (true {et.true_set})",
                 "defeated by Newcache/RPcache"))
    # Flush-Reload: reuse, access-driven.
    fr_demand = run_flush_reload_trials(SetAssociativeCache(32 * 1024, 4),
                                        REGION, RandomFillWindow(0, 0),
                                        trials=300, seed=3)
    fr_rf = run_flush_reload_trials(SetAssociativeCache(32 * 1024, 4),
                                    REGION, RandomFillWindow(16, 15),
                                    trials=300, seed=3)
    rows.append(("flush-reload (reuse/access)",
                 f"demand accuracy {fr_demand.exact_accuracy:.2f}",
                 f"random fill accuracy {fr_rf.exact_accuracy:.2f}"))
    rows.append(("cache-collision (reuse/timing)",
                 "see Figure 2 / Table III benches",
                 "defeated by random fill"))
    return rows, pp_sa, pp_nc, fr_demand, fr_rf, et


def test_table1_attack_classification(benchmark):
    result = benchmark.pedantic(run_demos, rounds=1, iterations=1)
    rows, pp_sa, pp_nc, fr_demand, fr_rf, et = result

    assert len(CLASSIFICATION) == 4
    assert pp_sa.set_accuracy > 0.9          # contention attack works on SA
    assert pp_nc.set_accuracy < 0.3          # randomization defeats it
    assert et.success                        # evict-time works on SA
    assert fr_demand.exact_accuracy == 1.0   # reuse attack on demand fetch
    assert fr_rf.exact_accuracy < 0.25       # random fill defeats it

    save_report("table1_attack_classification", format_table(
        ["attack (class)", "vulnerable design", "defended design"],
        rows, title="Table I: attack classification, demonstrated"))
