"""End-to-end integration tests: the paper's claims in miniature."""


from repro.analysis.hit_probability import (
    monte_carlo_p1_p2,
    sa_tag_store_factory,
)
from repro.attacks.flush_reload import run_flush_reload_trials
from repro.cache import AccessContext, SetAssociativeCache
from repro.core import RandomFillWindow, build_random_fill_hierarchy
from repro.crypto.traced_aes import AesMemoryLayout
from repro.cpu.timing import TimingModel
from repro.experiments import (
    BASELINE_CONFIG,
    make_cbc_trace,
    run_crypto_workload,
)


class TestQuickstartFlow:
    """The README quickstart, as a test."""

    def test_configure_and_run(self):
        system = build_random_fill_hierarchy(seed=1)
        system.os.create_process(pid=1)
        system.os.schedule(pid=1)
        system.os.set_window(-16, 5)
        ctx = AccessContext()
        timing = TimingModel(system.l1)
        trace = [(0x10000 + (i * 64) % 2048, 4, 0) for i in range(2000)]
        result = timing.run(trace, ctx)
        assert result.ipc > 0
        assert result.random_fill_issued > 0


class TestSecurityClaims:
    def test_demand_fetch_leaks_random_fill_does_not(self):
        """The headline: P1-P2 ~ 0.6 for demand fetch, ~0 for a window
        covering the table (Table III's two endpoints)."""
        demand = monte_carlo_p1_p2(sa_tag_store_factory(),
                                   RandomFillWindow(0, 0), trials=300,
                                   seed=1)
        covered = monte_carlo_p1_p2(sa_tag_store_factory(),
                                    RandomFillWindow.bidirectional(32),
                                    trials=300, seed=1)
        assert demand.p1_minus_p2 > 10 * abs(covered.p1_minus_p2)

    def test_flush_reload_defeated(self):
        layout = AesMemoryLayout()
        region = layout.final_round_table()
        demand = run_flush_reload_trials(
            SetAssociativeCache(32 * 1024, 4), region,
            RandomFillWindow(0, 0), trials=200, seed=2)
        protected = run_flush_reload_trials(
            SetAssociativeCache(32 * 1024, 4), region,
            RandomFillWindow(16, 15), trials=200, seed=2)
        assert demand.exact_accuracy == 1.0
        assert protected.exact_accuracy < 0.25


class TestPerformanceClaims:
    def test_random_fill_beats_disable_cache(self):
        """Section VI: random fill massively outperforms the
        constant-time disable-cache defence."""
        trace = make_cbc_trace(message_kb=2, seed=0)
        cfg = BASELINE_CONFIG.with_l1d(32 * 1024, 4)
        base = run_crypto_workload("baseline", cfg, trace=trace)
        rf = run_crypto_workload("random_fill", cfg,
                                 window=RandomFillWindow(16, 15),
                                 trace=trace)
        disable = run_crypto_workload("disable_cache", cfg, trace=trace)
        assert rf.ipc > disable.ipc
        assert rf.ipc / base.ipc > 0.85
        assert disable.ipc / base.ipc < 0.85

    def test_window_zero_behaves_like_baseline(self):
        """Zeroed range registers = conventional demand-fetch cache."""
        trace = make_cbc_trace(message_kb=1, seed=3)
        cfg = BASELINE_CONFIG
        base = run_crypto_workload("baseline", cfg, trace=trace)
        rf0 = run_crypto_workload("random_fill", cfg,
                                  window=RandomFillWindow(0, 0),
                                  trace=trace)
        assert rf0.cycles == base.cycles
        assert rf0.l1_demand_misses == base.l1_demand_misses
