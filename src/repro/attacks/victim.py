"""Victim processes the attacks target.

:class:`AesTimingVictim` is the Section II-C victim: a service that
encrypts attacker-supplied plaintext blocks with a secret key while the
attacker measures wall-clock (cycle) time.  The attacker "cleans the
cache so that each block encryption starts from a clean cache"; the
cleaning strategy is configurable because its effectiveness differs by
design (a random-replacement Newcache is harder to clean — the paper's
Table III note).

:class:`TableLookupVictim` is the minimal secret-dependent-access
process used by the Prime+Probe / Evict+Time / Flush+Reload demos.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Tuple

from repro.cache.context import AccessContext, DEFAULT_CONTEXT
from repro.cache.controller import L1Controller
from repro.cpu.timing import SimResult, TimingModel
from repro.crypto.traced_aes import AesMemoryLayout, TracedAES128
from repro.secure.region import ProtectedRegion


@dataclass(frozen=True)
class CleaningConfig:
    """How the attacker cleans the cache between measurements.

    ``strategy`` is ``"flush"`` (a perfect clean, e.g. clflush on every
    victim line) or ``"evict"`` (the attacker walks a large buffer; for
    random-replacement caches this leaves residue).  ``buffer_factor``
    scales the eviction buffer relative to cache capacity.
    """

    strategy: str = "flush"
    buffer_factor: int = 4
    buffer_base: int = 0x800_0000

    def __post_init__(self) -> None:
        if self.strategy not in ("flush", "evict"):
            raise ValueError(f"unknown cleaning strategy {self.strategy!r}")
        if self.buffer_factor < 1:
            raise ValueError("buffer_factor must be >= 1")


class AesTimingVictim:
    """AES encryption service measured by a timing attacker."""

    def __init__(self, l1: L1Controller, key: bytes,
                 layout: AesMemoryLayout = AesMemoryLayout(),
                 ctx: AccessContext = DEFAULT_CONTEXT,
                 cleaning: CleaningConfig = CleaningConfig(),
                 issue_width: int = 4, overlap_credit: int = 8,
                 gap: int = 3, extra_refs_per_block: int = 456):
        self.l1 = l1
        self.aes = TracedAES128(key, layout=layout, gap=gap,
                                extra_refs_per_block=extra_refs_per_block)
        self.layout = layout
        self.ctx = ctx
        self.cleaning = cleaning
        self.timing = TimingModel(l1, issue_width=issue_width,
                                  overlap_credit=overlap_credit)
        self._clean_cursor = 0

    # -- attacker-side cache cleaning ------------------------------------

    def clean_cache(self) -> None:
        l1 = self.l1
        if self.cleaning.strategy == "flush":
            l1.flush()
        else:
            l1.settle()
            l1.miss_queue.flush()
            l1.fill_queue.clear()
            store = l1.tag_store
            lines = store.capacity_lines * self.cleaning.buffer_factor
            base_line = self.cleaning.buffer_base // 64
            # Rotate through a 2x-larger buffer so LRU state varies.
            start = self._clean_cursor
            self._clean_cursor = (self._clean_cursor + lines) % (2 * lines)
            for i in range(lines):
                line = base_line + ((start + i) % (2 * lines))
                if not store.access(line):
                    store.fill(line)
        # Reset DRAM bank timing so each measurement starts at cycle 0.
        self.l1.next_level.dram.reset()

    # -- the attacker's measurement oracle --------------------------------

    def measure(self, plaintext: bytes) -> Tuple[bytes, int]:
        """One measurement: clean cache, encrypt a block, return time."""
        self.clean_cache()
        ciphertext, trace = self.aes.encrypt_block_traced(plaintext)
        result = self.timing.run(trace, self.ctx)
        return ciphertext, result.cycles

    # -- ground truth for evaluating attack success -----------------------

    def true_final_round_key(self) -> bytes:
        """The 10th-round key (what the final-round attack recovers)."""
        return b"".join(w.to_bytes(4, "big")
                        for w in self.aes.round_keys[40:44])

    def true_key_byte_xor(self, i: int, j: int) -> int:
        """k10_i ^ k10_j, the target of a final-round pair recovery."""
        k10 = self.true_final_round_key()
        return k10[i] ^ k10[j]

    def true_first_round_xor_nibble(self, i: int, j: int) -> int:
        """High nibble of k_i ^ k_j (first-round, line-granularity)."""
        key = b"".join(w.to_bytes(4, "big") for w in self.aes.round_keys[:4])
        return (key[i] ^ key[j]) >> 4


class TableLookupVictim:
    """Minimal victim: one secret-dependent lookup into an M-line table."""

    def __init__(self, l1: L1Controller, region: ProtectedRegion,
                 ctx: AccessContext = DEFAULT_CONTEXT,
                 noise_refs: int = 16, noise_base: int = 0x600_0000,
                 seed: int = 0):
        if noise_refs < 0:
            raise ValueError("noise_refs must be >= 0")
        self.l1 = l1
        self.region = region
        self.ctx = ctx
        self.noise_refs = noise_refs
        self.noise_base = noise_base
        # A fixed noise footprint: the victim's non-critical working set
        # is the same every invocation (its code/stack), so repeated runs
        # differ only through the secret-dependent access.
        rng = random.Random(seed)
        self._noise_lines = [rng.randrange(64) for _ in range(64)]
        self._noise_cursor = 0
        self.timing = TimingModel(l1)

    def _next_noise_addr(self) -> int:
        line = self._noise_lines[self._noise_cursor]
        self._noise_cursor = (self._noise_cursor + 1) % len(self._noise_lines)
        return self.noise_base + line * 64

    def run_once(self, secret: int) -> SimResult:
        """Perform the secret lookup plus some unrelated work."""
        if not 0 <= secret < self.region.num_lines:
            raise ValueError(
                f"secret {secret} outside table of {self.region.num_lines} lines")
        trace = []
        for _ in range(self.noise_refs):
            trace.append((self._next_noise_addr(), 2, 0))
        secret_line = self.region.first_line + secret
        trace.append((secret_line * self.region.line_size, 2, 0))
        for _ in range(self.noise_refs):
            trace.append((self._next_noise_addr(), 2, 0))
        return self.timing.run(trace, self.ctx)
