"""The scheme-plugin registry: one declaration registers a design everywhere.

A :class:`SchemeSpec` bundles everything the rest of the codebase needs
to know about one secure-cache design:

* a **functional-store factory** — builds the hit/miss-only
  :class:`~repro.cache.tagstore.TagStore` the leakage channels
  (Flush-Reload, occupancy) run against;
* a **controller factory** — builds the timing hierarchy (L1 + L2 +
  DRAM plus, for random fill designs, the OS window layer) the figure
  sweeps simulate;
* the **fill strategy** (demand fetch, the paper's random fill window,
  or a custom no-fill randomization) and an optional **victim-cache
  factory** overriding how a functional victim issues its fills;
* **capability flags**: ``preload`` (PLcache-style setup routine),
  ``needs_protected`` (the timing build requires protected regions),
  ``lane_eligible`` / ``pow2_window_only`` (may the batch planner lower
  cells of this scheme onto the flat/lane kernels, and under which
  window shapes).

Registering a spec (:func:`register`) makes the scheme available at
once to the timing simulation (:func:`repro.experiments.schemes.build_scheme`),
the functional leakage adapters
(:func:`repro.leakage.adapters.build_functional_scheme`), the leakage
and occupancy sweeps, the batch/lane planner's eligibility check, the
service codec (spec validation surfaces the registered names in its
400 body), and the CLI scheme choices.  The registry is *the* source of
truth: no scheme name appears in an if/elif ladder outside this
package.

Lookups are order-independent: two registries populated with the same
specs in any order answer every query identically (pinned by a
hypothesis test).  Listing order is registration order, so the
canonical :mod:`repro.schemes.builtin` order is what tables and docs
show.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

#: fill strategies a scheme can declare
DEMAND = "demand"
RANDOM_FILL = "random_fill"
NOFILL_RANDOM = "nofill_random"
FILL_STRATEGIES = (DEMAND, RANDOM_FILL, NOFILL_RANDOM)


@dataclass(frozen=True)
class StoreGeometry:
    """Geometry + seed handed to a functional-store factory.

    ``seed`` is already derived for the store (the builder applies the
    scheme's seed-derivation path), so factories use it directly.
    """

    cache_bytes: int
    associativity: int
    seed: int
    line_size: int = 64

    @property
    def capacity_lines(self) -> int:
        return self.cache_bytes // self.line_size


#: builds the functional tag store for the leakage channels
StoreFactory = Callable[[StoreGeometry], Any]

#: ``(config, seed, protected) -> (hierarchy, os_layer)`` for timing runs
ControllerFactory = Callable[[Any, int, Any], Tuple[Any, Any]]

#: ``(store, window, rng, region, ctx) -> functional victim fill model``
VictimCacheFactory = Callable[[Any, Any, Any, Any, Any], Any]


@dataclass(frozen=True)
class SchemeSpec:
    """One scheme, declared once.

    ``store_factory`` enables the functional (leakage) side;
    ``controller_factory`` enables the timing side; a spec may declare
    either or both, but not neither.
    """

    name: str
    summary: str = ""
    fill_strategy: str = DEMAND
    store_factory: Optional[StoreFactory] = None
    controller_factory: Optional[ControllerFactory] = None
    victim_cache_factory: Optional[VictimCacheFactory] = None
    #: default functional geometry (leakage channels)
    cache_bytes: int = 8 * 1024
    associativity: int = 4
    #: run the preload-and-lock setup routine (PLcache+preload)
    preload: bool = False
    #: the timing build requires protected regions
    needs_protected: bool = False
    #: cells of this scheme may lower onto the flat/lane kernels
    lane_eligible: bool = False
    #: lane lowering additionally requires a power-of-two window size
    pow2_window_only: bool = False

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise ValueError(f"scheme name must be an identifier, got {self.name!r}")
        if self.fill_strategy not in FILL_STRATEGIES:
            raise ValueError(
                f"unknown fill strategy {self.fill_strategy!r}; "
                f"known: {', '.join(FILL_STRATEGIES)}"
            )
        if self.store_factory is None and self.controller_factory is None:
            raise ValueError(
                f"scheme {self.name!r} declares neither a store factory "
                f"nor a controller factory"
            )

    @property
    def functional(self) -> bool:
        """Can the leakage channels run this scheme?"""
        return self.store_factory is not None

    @property
    def timing(self) -> bool:
        """Can the figure sweeps simulate this scheme?"""
        return self.controller_factory is not None

    @property
    def uses_window(self) -> bool:
        """Does the victim take (and require) a random fill window?"""
        return self.fill_strategy == RANDOM_FILL

    @property
    def has_custom_fill(self) -> bool:
        """Does the scheme replace the default windowed fill model?"""
        return self.victim_cache_factory is not None


class SchemeRegistry:
    """Name -> :class:`SchemeSpec`, with capability-filtered queries."""

    def __init__(self) -> None:
        self._specs: Dict[str, SchemeSpec] = {}

    def register(self, spec: SchemeSpec) -> SchemeSpec:
        """Add one spec; duplicate names are a programming error."""
        if spec.name in self._specs:
            raise ValueError(f"scheme {spec.name!r} is already registered")
        self._specs[spec.name] = spec
        return spec

    def names(
        self,
        functional: Optional[bool] = None,
        timing: Optional[bool] = None,
        random_fill: Optional[bool] = None,
    ) -> Tuple[str, ...]:
        """Registered names, optionally filtered by capability.

        Order is registration order (the canonical order of
        :mod:`repro.schemes.builtin`), which is the same for equal spec
        sets registered in any order only up to permutation — callers
        that need a canonical order should sort.
        """
        out = []
        for spec in self._specs.values():
            if functional is not None and spec.functional != functional:
                continue
            if timing is not None and spec.timing != timing:
                continue
            if random_fill is not None and spec.uses_window != random_fill:
                continue
            out.append(spec.name)
        return tuple(out)

    def get(
        self,
        name: str,
        functional: bool = False,
        timing: bool = False,
    ) -> SchemeSpec:
        """Look up a spec, checking the requested capability.

        Unknown names and capability mismatches raise :class:`ValueError`
        listing the registered names that *would* qualify — the list is
        dynamic, so error messages, CLI usage errors and the service's
        ``invalid_spec`` 400 bodies always name every available scheme.
        """
        spec = self._specs.get(name)
        if spec is None:
            known = ", ".join(sorted(self.names(functional=functional or None, timing=timing or None)))
            raise ValueError(f"unknown scheme {name!r}; registered: {known}")
        if functional and not spec.functional:
            known = ", ".join(sorted(self.names(functional=True)))
            raise ValueError(
                f"scheme {name!r} has no functional (leakage) adapter; "
                f"functional schemes: {known}"
            )
        if timing and not spec.timing:
            known = ", ".join(sorted(self.names(timing=True)))
            raise ValueError(
                f"scheme {name!r} has no timing controller; timing schemes: {known}"
            )
        return spec

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[SchemeSpec]:
        return iter(self._specs.values())


#: the process-wide registry, populated by :mod:`repro.schemes.builtin`
REGISTRY = SchemeRegistry()


def register(spec: SchemeSpec) -> SchemeSpec:
    """Register ``spec`` in the process-wide registry."""
    return REGISTRY.register(spec)


def get_scheme(name: str, functional: bool = False, timing: bool = False) -> SchemeSpec:
    """Look up ``name`` in the process-wide registry."""
    return REGISTRY.get(name, functional=functional, timing=timing)


def scheme_names(**filters: Optional[bool]) -> Tuple[str, ...]:
    """Registered names (see :meth:`SchemeRegistry.names` for filters)."""
    return REGISTRY.names(**filters)


def functional_scheme_names() -> Tuple[str, ...]:
    """Schemes the leakage channels can run."""
    return REGISTRY.names(functional=True)


def timing_scheme_names() -> Tuple[str, ...]:
    """Schemes the figure sweeps can simulate."""
    return REGISTRY.names(timing=True)


def random_fill_scheme_names() -> Tuple[str, ...]:
    """Functional schemes whose victim runs the random fill window."""
    return REGISTRY.names(functional=True, random_fill=True)
