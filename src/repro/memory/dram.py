"""Single-channel DDR3-1600 DRAM timing model.

Table IV specifies "DRAM frequency/channels: DDR3-1600/1".  The paper uses
gem5's detailed DRAM model; we build a reduced open-page model that keeps
the two properties the evaluation depends on:

* a large, row-buffer-dependent access latency (so L2 misses are expensive
  and the hit/miss timing gap the attacks exploit is realistic), and
* a single channel with finite banks, so concurrent misses queue — the
  memory-level-parallelism effects behind Section VII's streaming results
  survive.

Latency numbers are derived from standard DDR3-1600 (11-11-11) timings at
the CPU clock: with an 800 MHz DRAM clock and a nominal 2 GHz core,
tRCD = tCAS = tRP = 13.75 ns ≈ 28 CPU cycles each, plus a fixed
controller/bus overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class DramConfig:
    """Timing parameters, in CPU cycles."""

    t_rcd: int = 28       # row activate -> column access
    t_cas: int = 28       # column access -> first data
    t_rp: int = 28        # precharge (row close)
    t_burst: int = 8      # data burst for one 64-byte line
    controller_overhead: int = 20
    num_banks: int = 8
    row_size_bytes: int = 8192
    line_size: int = 64

    @property
    def row_hit_latency(self) -> int:
        return self.controller_overhead + self.t_cas + self.t_burst

    @property
    def row_miss_latency(self) -> int:
        return (self.controller_overhead + self.t_rp + self.t_rcd
                + self.t_cas + self.t_burst)


class DramModel:
    """Open-page DRAM with per-bank row buffers and bank busy times.

    The model is *functional* for addresses (any line address is valid)
    and *temporal* for latency: ``access`` returns the completion cycle of
    a line fetch issued at ``now``.
    """

    def __init__(self, config: DramConfig = DramConfig()):
        self.config = config
        self._open_row: Dict[int, int] = {}
        self._bank_free_at: Dict[int, int] = {}
        self.row_hits = 0
        self.row_misses = 0
        self.lines_transferred = 0

    def _bank_and_row(self, line_addr: int) -> "tuple[int, int]":
        lines_per_row = self.config.row_size_bytes // self.config.line_size
        row = line_addr // lines_per_row
        bank = row % self.config.num_banks
        return bank, row

    def access(self, line_addr: int, now: int) -> int:
        """Fetch one line; returns the cycle at which data is available.

        The bank is busy only for the non-pipelined part of the access
        (precharge/activate plus the data burst); column accesses to an
        open row pipeline behind each other, so a stream of row hits is
        limited by burst bandwidth, not by the full access latency.
        """
        cfg = self.config
        bank, row = self._bank_and_row(line_addr)
        start = max(now, self._bank_free_at.get(bank, 0))
        if self._open_row.get(bank) == row:
            latency = cfg.row_hit_latency
            busy = cfg.t_burst
            self.row_hits += 1
        else:
            latency = cfg.row_miss_latency
            busy = cfg.t_rp + cfg.t_rcd + cfg.t_burst
            self.row_misses += 1
            self._open_row[bank] = row
        self._bank_free_at[bank] = start + busy
        self.lines_transferred += 1
        return start + latency

    def reset_stats(self) -> None:
        self.row_hits = 0
        self.row_misses = 0
        self.lines_transferred = 0

    def reset(self) -> None:
        """Full reset: stats, open rows, and bank timing."""
        self.reset_stats()
        self._open_row.clear()
        self._bank_free_at.clear()
