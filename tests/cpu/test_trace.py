"""Tests for the trace record format."""

import pytest

from repro.cpu.trace import (
    MemRef,
    instruction_count,
    materialize,
    validate_trace,
)


class TestMemRef:
    def test_is_a_tuple(self):
        ref = MemRef(100, 2, 1)
        assert ref == (100, 2, 1)
        addr, gap, write = ref
        assert (addr, gap, write) == (100, 2, 1)

    def test_defaults(self):
        assert MemRef(5) == (5, 1, 0)


class TestValidate:
    def test_accepts_good_trace(self):
        trace = [(0, 1, 0), MemRef(64, 3, 1)]
        assert list(validate_trace(trace)) == trace

    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            list(validate_trace([(-1, 1, 0)]))

    def test_rejects_zero_gap(self):
        with pytest.raises(ValueError):
            list(validate_trace([(0, 0, 0)]))

    def test_rejects_bad_write_flag(self):
        with pytest.raises(ValueError):
            list(validate_trace([(0, 1, 2)]))

    def test_rejects_wrong_arity(self):
        with pytest.raises(ValueError):
            list(validate_trace([(0, 1)]))


class TestHelpers:
    def test_instruction_count(self):
        assert instruction_count([(0, 3, 0), (64, 5, 1)]) == 8

    def test_materialize(self):
        gen = ((i, 1, 0) for i in range(3))
        assert materialize(gen) == [(0, 1, 0), (1, 1, 0), (2, 1, 0)]
