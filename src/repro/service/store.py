"""The shared result store behind the sweep service.

``run_cells`` has always consulted a :class:`ResultCache` before
dispatching; the service promotes that contract to an explicit
interface so the *same* store instance is shared by every sweep the
service runs — a cell any previous sweep computed is served at cache
speed without touching the worker pool, whoever submits it.

:class:`ResultStore` is the minimal protocol ``run_cells`` actually
uses (``lookup_spec`` / ``store`` / ``enabled``) plus the
``stats_snapshot`` the ``/metrics`` endpoint reports.
:class:`DiskResultStore` is the current backend: a thin adapter over
the existing content-addressed disk cache.  A future keyed object
store (the ROADMAP's "pluggable backend") implements the same four
members and drops in.
"""

from __future__ import annotations

import abc
import os
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.runner.result_cache import RESULT_CACHE, ResultCache


class ResultStore(abc.ABC):
    """What the runner and the service need from a result backend."""

    @property
    @abc.abstractmethod
    def enabled(self) -> bool:
        """False when the backend cannot persist (lookups all miss)."""

    @abc.abstractmethod
    def lookup_spec(self, spec: Any) -> Tuple[Optional[str], Any]:
        """``(fingerprint, cached_result_or_None)`` for one spec."""

    @abc.abstractmethod
    def store(self, fingerprint: str, result: Any) -> None:
        """Persist one finished cell under its fingerprint."""

    @abc.abstractmethod
    def stats_snapshot(self) -> Dict[str, Any]:
        """Thread-safe counters (hits/misses/...) for ``/metrics``."""

    def warm_count(self, specs: Iterable[Any]) -> int:
        """How many of ``specs`` are already checkpointed.

        Restart recovery uses this to report how much of a resumed
        sweep will be served warm.  The base implementation probes with
        ``lookup_spec``; backends should override with a stat-only path
        that does not inflate the hit/miss counters."""
        return sum(1 for spec in specs if self.lookup_spec(spec)[1] is not None)


class DiskResultStore(ResultStore):
    """The content-addressed disk cache behind the store interface.

    Wraps an existing :class:`ResultCache` (default: the process-wide
    :data:`~repro.runner.result_cache.RESULT_CACHE`, so a service and
    an in-process CLI sweep share entries *and* counters).  Passing a
    dedicated ``ResultCache(disk_dir=...)`` isolates a service — the
    tests and the smoke harness do exactly that.
    """

    def __init__(self, cache: Optional[ResultCache] = None):
        self.cache = cache if cache is not None else RESULT_CACHE

    @property
    def enabled(self) -> bool:
        return self.cache.enabled

    def lookup_spec(self, spec: Any) -> Tuple[Optional[str], Any]:
        return self.cache.lookup_spec(spec)

    def store(self, fingerprint: str, result: Any) -> None:
        self.cache.store(fingerprint, result)

    def stats_snapshot(self) -> Dict[str, Any]:
        snapshot = self.cache.stats_snapshot()
        lookups = snapshot["hits"] + snapshot["misses"]
        snapshot["hit_rate"] = snapshot["hits"] / lookups if lookups else 0.0
        snapshot["backend"] = "disk"
        return snapshot

    def warm_count(self, specs: Iterable[Any]) -> int:
        """Stat-only checkpoint probe: fingerprints + file existence,
        so counting warm cells does not skew the hit/miss counters the
        smoke asserts on."""
        if not self.enabled:
            return 0
        warm = 0
        for spec in specs:
            fingerprint = ResultCache.fingerprint(spec)
            if fingerprint and os.path.exists(self.cache._path_for(fingerprint)):
                warm += 1
        return warm
