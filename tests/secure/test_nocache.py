"""Tests for the disable-cache policy."""

from repro.cache.context import AccessContext
from repro.cache.hierarchy import build_hierarchy
from repro.cache.mshr import RequestType
from repro.secure.nocache import DisableCachePolicy
from repro.secure.region import ProtectedRegion, RegionSet


def make_policy():
    return DisableCachePolicy(RegionSet([ProtectedRegion(0x10000, 1024)]))


class TestDisableCache:
    def test_bypass_only_protected_lines(self):
        policy = make_policy()
        ctx = AccessContext()
        assert policy.bypass(0x10000 // 64, ctx)
        assert not policy.bypass(0, ctx)

    def test_non_critical_misses_are_demand_fetch(self):
        plan = make_policy().on_miss(0, AccessContext())
        assert plan.demand_type is RequestType.NORMAL

    def test_protected_lines_never_cached(self):
        h = build_hierarchy(policy=make_policy())
        r = h.l1.access(0x10000, now=0)
        assert r.bypassed
        r2 = h.l1.access(0x10000, now=r.ready_at + 100)
        assert r2.bypassed and not r2.l1_hit

    def test_protected_lines_constant_l1_behaviour(self):
        """Every critical access costs the same (always L2), regardless
        of history — the constant-time property."""
        h = build_hierarchy(policy=make_policy())
        h.l2.tag_store.fill(0x10000 // 64)  # warm L2
        times = []
        now = 0
        for _ in range(5):
            r = h.l1.access(0x10000, now)
            times.append(r.ready_at - now)
            now = r.ready_at + 50
        assert len(set(times)) == 1

    def test_normal_lines_cached(self):
        h = build_hierarchy(policy=make_policy())
        r = h.l1.access(0, now=0)
        r2 = h.l1.access(0, now=r.ready_at + 1)
        assert r2.l1_hit
