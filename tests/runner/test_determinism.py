"""Seed-determinism regressions.

A cell is a pure function of its spec: the same ``CellSpec`` must give
bit-identical results run inline, through the worker pool, or with its
trace served by the trace cache.  These tests pin the property the
parallel runner's correctness rests on.
"""

from repro.experiments.perf_general import figure10, run_general_workload
from repro.runner.cells import CellSpec, run_cell
from repro.runner.pool import run_cells
from repro.workloads import cache as cache_mod
from repro.workloads.spec import make_workload


def test_run_cell_is_repeatable():
    spec = CellSpec(kind="general", benchmark="bzip2", window=(4, 3),
                    n_refs=3000, seed=7)
    assert run_cell(spec) == run_cell(spec)


def test_cached_trace_matches_fresh_trace(monkeypatch):
    monkeypatch.setattr(cache_mod.TRACE_CACHE, "disk_dir", None)
    cache_mod.TRACE_CACHE.clear_memory()
    trace = make_workload("hmmer", n_refs=3000, seed=1)
    fresh = run_general_workload("hmmer", (0, 3), n_refs=3000, seed=1,
                                 trace=trace)
    cached = run_general_workload("hmmer", (0, 3), n_refs=3000, seed=1)
    assert cached == fresh


def test_pool_matches_inline():
    specs = [CellSpec(kind="general", benchmark=benchmark, window=window,
                      n_refs=2000, seed=5)
             for benchmark in ("milc", "libquantum")
             for window in ((0, 0), (0, 7))]
    assert run_cells(specs, jobs=2) == run_cells(specs, jobs=1)


def test_figure10_is_jobs_invariant():
    kwargs = dict(benchmarks=("hmmer",), windows=((0, 0), (0, 3), (2, 1)),
                  n_refs=2000, seed=9)
    sequential = figure10(jobs=1, **kwargs)
    parallel = figure10(jobs=2, **kwargs)
    assert [(p.benchmark, p.window, p.result, p.normalized_ipc)
            for p in sequential] == \
           [(p.benchmark, p.window, p.result, p.normalized_ipc)
            for p in parallel]
