"""Cache collision timing attacks against AES (Bonneau & Mironov).

The attacker triggers block encryptions of random plaintext, measures
each encryption's total time, and aggregates the measurements by the
XOR of a pair of ciphertext (final-round attack) or plaintext
(first-round attack) bytes.  A cache collision between the pair's table
lookups lowers the expected time, so the *minimum* average time reveals
the corresponding key-byte XOR (Figure 2; Section II-C):

* final round:  k10_i ^ k10_j = c_i ^ c_j at the dip (exact byte value),
* first round:  <k_i ^ k_j> = <p_i ^ p_j> at the dip (line granularity,
  i.e. the high nibble with 16 four-byte entries per 64-byte line);
  only byte positions with i = j (mod 4) share a lookup table.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.attacks.victim import AesTimingVictim


@dataclass
class PairEstimate:
    """Recovery state for one byte pair."""

    pair: Tuple[int, int]
    recovered: int
    true_value: int
    separation: float  # how far the dip is below the mean, in sigmas

    @property
    def correct(self) -> bool:
        return self.recovered == self.true_value


@dataclass
class AttackResult:
    """Outcome of a collision attack run."""

    measurements: int
    success: bool
    pairs: List[PairEstimate]
    correct_pairs: int = field(init=False)

    def __post_init__(self) -> None:
        self.correct_pairs = sum(1 for p in self.pairs if p.correct)


class _TimingAccumulator:
    """Per-pair bucketed timing sums."""

    def __init__(self, buckets: int):
        self.buckets = buckets
        self.sums = [0.0] * buckets
        self.counts = [0] * buckets

    def add(self, bucket: int, value: float) -> None:
        self.sums[bucket] += value
        self.counts[bucket] += 1

    def averages(self) -> List[float]:
        return [s / c if c else float("nan")
                for s, c in zip(self.sums, self.counts)]

    def argmin(self) -> int:
        best, best_avg = 0, float("inf")
        for i, (s, c) in enumerate(zip(self.sums, self.counts)):
            if c and s / c < best_avg:
                best, best_avg = i, s / c
        return best

    def separation_sigmas(self) -> float:
        """(mean - min) / stddev of the bucket averages (dip depth)."""
        avgs = [a for a in self.averages() if a == a]  # drop NaN
        if len(avgs) < 2:
            return 0.0
        mean = sum(avgs) / len(avgs)
        var = sum((a - mean) ** 2 for a in avgs) / (len(avgs) - 1)
        if var == 0:
            return 0.0
        return (mean - min(avgs)) / var ** 0.5


class FinalRoundCollisionAttack:
    """Final-round attack: recovers k10_i ^ k10_j for chosen pairs."""

    def __init__(self, victim: AesTimingVictim,
                 pairs: Optional[Sequence[Tuple[int, int]]] = None,
                 seed: int = 0):
        self.victim = victim
        self.pairs = list(pairs) if pairs is not None else \
            [(0, j) for j in range(1, 16)]
        self._rng = random.Random(seed)
        self._acc: Dict[Tuple[int, int], _TimingAccumulator] = {
            pair: _TimingAccumulator(256) for pair in self.pairs}
        self.measurements = 0

    def collect(self, n: int) -> None:
        """Take ``n`` more measurements with random plaintext blocks."""
        rng = self._rng
        victim = self.victim
        for _ in range(n):
            plaintext = rng.getrandbits(128).to_bytes(16, "big")
            ciphertext, cycles = victim.measure(plaintext)
            for pair, acc in self._acc.items():
                i, j = pair
                acc.add(ciphertext[i] ^ ciphertext[j], cycles)
        self.measurements += n

    def estimates(self) -> List[PairEstimate]:
        return [PairEstimate(
            pair=pair,
            recovered=acc.argmin(),
            true_value=self.victim.true_key_byte_xor(*pair),
            separation=acc.separation_sigmas(),
        ) for pair, acc in self._acc.items()]

    def timing_characteristic(self, pair: Tuple[int, int]) -> List[Tuple[int, float]]:
        """Figure 2's chart: (c_i ^ c_j, mean-centred average time)."""
        acc = self._acc[pair]
        avgs = acc.averages()
        valid = [a for a in avgs if a == a]
        center = sum(valid) / len(valid) if valid else 0.0
        return [(x, (a - center) if a == a else 0.0)
                for x, a in enumerate(avgs)]

    def run(self, max_measurements: int, check_every: int = 2000,
            require_all: bool = True) -> AttackResult:
        """Collect until every pair (or any pair) is recovered, or cap."""
        if max_measurements <= 0:
            raise ValueError("max_measurements must be positive")
        while self.measurements < max_measurements:
            batch = min(check_every, max_measurements - self.measurements)
            self.collect(batch)
            ests = self.estimates()
            done = (all(e.correct for e in ests) if require_all
                    else any(e.correct and e.separation > 3 for e in ests))
            if done:
                return AttackResult(self.measurements, True, ests)
        return AttackResult(self.measurements,
                            all(e.correct for e in self.estimates()),
                            self.estimates())


class FirstRoundCollisionAttack:
    """First-round attack: recovers the high nibble of k_i ^ k_j.

    Pairs must satisfy ``i = j (mod 4)`` — first-round lookups of other
    positions go to different tables and cannot collide.
    """

    def __init__(self, victim: AesTimingVictim,
                 pairs: Optional[Sequence[Tuple[int, int]]] = None,
                 seed: int = 0):
        self.victim = victim
        self.pairs = list(pairs) if pairs is not None else \
            [(0, 4), (0, 8), (0, 12), (1, 5), (2, 6), (3, 7)]
        for i, j in self.pairs:
            if (i - j) % 4:
                raise ValueError(
                    f"pair ({i},{j}) uses different first-round tables")
        self._rng = random.Random(seed)
        self._acc: Dict[Tuple[int, int], _TimingAccumulator] = {
            pair: _TimingAccumulator(16) for pair in self.pairs}
        self.measurements = 0

    def collect(self, n: int) -> None:
        rng = self._rng
        victim = self.victim
        for _ in range(n):
            plaintext = rng.getrandbits(128).to_bytes(16, "big")
            _, cycles = victim.measure(plaintext)
            for pair, acc in self._acc.items():
                i, j = pair
                acc.add((plaintext[i] ^ plaintext[j]) >> 4, cycles)
        self.measurements += n

    def estimates(self) -> List[PairEstimate]:
        return [PairEstimate(
            pair=pair,
            recovered=acc.argmin(),
            true_value=self.victim.true_first_round_xor_nibble(*pair),
            separation=acc.separation_sigmas(),
        ) for pair, acc in self._acc.items()]

    def run(self, max_measurements: int,
            check_every: int = 2000) -> AttackResult:
        if max_measurements <= 0:
            raise ValueError("max_measurements must be positive")
        while self.measurements < max_measurements:
            batch = min(check_every, max_measurements - self.measurements)
            self.collect(batch)
            ests = self.estimates()
            if all(e.correct for e in ests):
                return AttackResult(self.measurements, True, ests)
        return AttackResult(self.measurements,
                            all(e.correct for e in self.estimates()),
                            self.estimates())
