"""Unit tests for the two-layer (memory LRU + disk) trace cache."""

import pickle

import pytest

from repro.workloads import cache as cache_mod
from repro.workloads.cache import TraceCache, cached_workload, default_cache_dir
from repro.workloads.spec import GENERATOR_VERSION, make_workload


def memory_only(**kwargs):
    return TraceCache(use_default_disk_dir=False, **kwargs)


class TestMemoryLayer:
    def test_maker_called_once_per_key(self):
        cache = memory_only()
        calls = []

        def maker():
            calls.append(1)
            return [(1, 2, 0)]

        key = ("spec", "x", 1, 0, GENERATOR_VERSION)
        first = cache.get(key, maker)
        second = cache.get(key, maker)
        assert first is second
        assert len(calls) == 1
        assert cache.stats() == (1, 0, 1)

    def test_lru_evicts_least_recently_used(self):
        cache = memory_only(memory_entries=2)
        made = []

        def maker_for(key):
            return lambda: (made.append(key), [key])[1]

        cache.get("a", maker_for("a"))
        cache.get("b", maker_for("b"))
        cache.get("a", maker_for("a"))  # refresh "a"
        cache.get("c", maker_for("c"))  # evicts "b", the LRU entry
        cache.get("b", maker_for("b"))  # regenerated
        assert made == ["a", "b", "c", "b"]

    def test_clear_memory(self):
        cache = memory_only()
        cache.get("k", lambda: [(0, 0, 0)])
        cache.clear_memory()
        cache.get("k", lambda: [(0, 0, 0)])
        assert cache.misses == 2

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            memory_only(memory_entries=0)


class TestDiskLayer:
    def test_round_trip_across_instances(self, tmp_path):
        key = ("spec", "demo", 4, 0, GENERATOR_VERSION)
        trace = [(64 * i, 1, 0) for i in range(4)]
        writer = TraceCache(disk_dir=str(tmp_path))
        assert writer.get(key, lambda: trace) is trace
        reader = TraceCache(disk_dir=str(tmp_path))
        again = reader.get(key, lambda: pytest.fail("expected a disk hit"))
        assert again == trace
        assert reader.stats() == (0, 1, 0)

    def test_version_bump_orphans_old_entries(self, tmp_path):
        old_key = ("spec", "demo", 4, 0, GENERATOR_VERSION)
        new_key = ("spec", "demo", 4, 0, GENERATOR_VERSION + 1)
        TraceCache(disk_dir=str(tmp_path)).get(old_key, lambda: [("old",)])
        fresh = TraceCache(disk_dir=str(tmp_path))
        assert fresh.get(new_key, lambda: [("new",)]) == [("new",)]
        assert fresh.stats() == (0, 0, 1)

    def test_stored_key_is_verified(self, tmp_path):
        # A file at the right path but recording a different key (hash
        # collision / hand-edited entry) must not alias.
        key = ("spec", "demo", 4, 0, GENERATOR_VERSION)
        path = TraceCache._path_for(str(tmp_path), key)
        with open(path, "wb") as fh:
            pickle.dump((("other", "key"), [("bogus",)]), fh)
        cache = TraceCache(disk_dir=str(tmp_path))
        assert cache.get(key, lambda: [("real",)]) == [("real",)]
        assert cache.stats() == (0, 0, 1)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        key = ("k",)
        path = TraceCache._path_for(str(tmp_path), key)
        with open(path, "wb") as fh:
            fh.write(b"definitely not a pickle")
        cache = TraceCache(disk_dir=str(tmp_path))
        assert cache.get(key, lambda: [("real",)]) == [("real",)]

    def test_env_disables_disk(self, monkeypatch):
        for value in ("0", "off", "NONE", " disabled "):
            monkeypatch.setenv("REPRO_TRACE_CACHE", value)
            assert default_cache_dir() is None
            assert TraceCache().disk_dir is None

    def test_env_relocates_disk(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        assert TraceCache().disk_dir == str(tmp_path)


class TestGetTrace:
    def test_upgrades_legacy_list_entries(self, tmp_path):
        """Disk entries written before the columnar engine are bare
        record lists; get_trace must hand back a columnar Trace."""
        from repro.cpu.trace import Trace
        key = ("spec", "demo", 3, 0, GENERATOR_VERSION)
        records = [(64 * i, 1, 0) for i in range(3)]
        writer = TraceCache(disk_dir=str(tmp_path))
        writer._disk_store(key, records)  # legacy list payload
        reader = TraceCache(disk_dir=str(tmp_path))
        trace = reader.get_trace(
            key, lambda: pytest.fail("expected a disk hit"))
        assert isinstance(trace, Trace)
        assert trace == records
        # Upgrade happens once: the memory layer now holds the Trace.
        assert reader.get_trace(key, lambda: pytest.fail("hit")) is trace

    def test_passes_columnar_through(self):
        from repro.cpu.trace import Trace
        cache = memory_only()
        trace = Trace.from_records([(0, 1, 0)])
        assert cache.get_trace("k", lambda: trace) is trace


class TestCachedWorkload:
    def test_matches_direct_generation(self, monkeypatch):
        monkeypatch.setattr(cache_mod.TRACE_CACHE, "disk_dir", None)
        trace = cached_workload("hmmer", n_refs=500, seed=3)
        assert trace == make_workload("hmmer", n_refs=500, seed=3)
        # Second lookup is a memory hit on the very same object.
        assert cached_workload("hmmer", n_refs=500, seed=3) is trace
