"""Regenerate ``golden_schemes.json`` (the pre-registry golden pins).

The golden file was produced by this script running against the
pre-registry adapters (PR 8 tree); the conformance suite replays the
same specs through the registry and requires bit-identical results.
Regenerate only when a deliberate, documented measurement change bumps
``LEAKAGE_CODE_VERSION`` / ``SIM_CODE_VERSION``:

    PYTHONPATH=src python tests/schemes/_generate_golden.py
"""

import dataclasses
import json
import os

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_schemes.json")

#: (scheme, window) points of the migrated six functional schemes
LEAKAGE_POINTS = [
    ("demand_fetch", None),
    ("random_fill", (4, 3)),
    ("newcache", None),
    ("random_fill_newcache", (4, 3)),
    ("rpcache", None),
    ("plcache_preload", None),
]

#: (scheme, window) points of the migrated timing schemes (Figure 10)
TIMING_POINTS = [
    ("baseline", None),
    ("random_fill", (4, 3)),
    ("random_fill", (16, 15)),
    ("newcache", None),
    ("random_fill_newcache", (4, 3)),
    ("plcache_preload", None),
    ("tagged_prefetch", None),
]


def leakage_golden():
    from repro.leakage.sweep import LeakageCellSpec

    cells = []
    for scheme, window in LEAKAGE_POINTS:
        for channel in ("flush_reload", "occupancy"):
            spec = LeakageCellSpec(
                channel=channel,
                scheme=scheme,
                window=window,
                trials=150,
                seed=7,
                curve_repeats=20,
            )
            cells.append(spec.run().to_json())
    return cells


def timing_golden():
    from repro.runner.cells import CellSpec, run_cell

    cells = []
    for scheme, window in TIMING_POINTS:
        spec = CellSpec(
            kind="general",
            scheme=scheme,
            benchmark="astar",
            window=window,
            n_refs=6000,
            seed=7,
        )
        result = run_cell(spec)
        payload = {
            "scheme": scheme,
            "window": list(window) if window else None,
            **dataclasses.asdict(result),
        }
        cells.append(payload)
    return cells


def main():
    golden = {
        "comment": "pre-registry golden results; see _generate_golden.py",
        "leakage": leakage_golden(),
        "timing": timing_golden(),
    }
    with open(GOLDEN_PATH, "w") as handle:
        json.dump(golden, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
