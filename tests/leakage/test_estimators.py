"""Estimator tests against channels with known information content."""

import random

import pytest

from repro.analysis.channel_capacity import channel_capacity_bits
from repro.core.window import RandomFillWindow
from repro.leakage.estimators import (
    JointCounts,
    conditional_guessing_entropy,
    entropy_bits,
    guessing_entropy,
    mutual_information_bits,
    n_to_success,
    sample_window_channel,
    success_rate_curve,
)


def identity_joint(m=8, trials=4000, seed=1):
    rng = random.Random(seed)
    return JointCounts.from_samples(
        (s, s) for s in (rng.randrange(m) for _ in range(trials)))


def independent_joint(m=8, trials=4000, seed=2):
    rng = random.Random(seed)
    return JointCounts.from_samples(
        (rng.randrange(m), rng.randrange(m)) for _ in range(trials))


class TestJointCounts:
    def test_accumulates(self):
        joint = JointCounts()
        joint.add(0, "a")
        joint.add(0, "a")
        joint.add(1, "b", count=3)
        assert joint.total == 5
        assert joint.row(0) == {"a": 2}
        assert joint.secret_marginal() == {0: 2, 1: 3}
        assert joint.observation_marginal() == {"a": 2, "b": 3}
        assert joint.num_joint_symbols() == 2

    def test_nested_round_trip(self):
        nested = {0: {(1,): 4, (): 1}, 3: {(1,): 2}}
        joint = JointCounts.from_nested(nested)
        assert joint.total == 7
        assert joint.row(3) == {(1,): 2}

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            JointCounts().add(0, "a", count=0)


class TestEntropy:
    def test_uniform(self):
        assert entropy_bits({i: 5 for i in range(8)}) == pytest.approx(3.0)

    def test_deterministic(self):
        assert entropy_bits({"x": 100}) == 0.0


class TestMutualInformation:
    def test_identity_channel_is_log2_m(self):
        mi = mutual_information_bits(identity_joint(m=8))
        assert mi == pytest.approx(3.0, abs=0.02)

    def test_independent_channel_is_zero(self):
        mi = mutual_information_bits(independent_joint(m=8))
        assert mi == pytest.approx(0.0, abs=0.05)

    def test_plugin_biased_above_corrected_on_noise(self):
        joint = independent_joint(m=8)
        plugin = mutual_information_bits(joint, correction="none")
        corrected = mutual_information_bits(joint)
        assert plugin > corrected  # MM removes the upward bias

    def test_eq7_channel_matches_analytic_capacity(self):
        """The acceptance check: empirical MI on the Equation (7)
        channel reproduces the Equation (8) closed form."""
        for size in (2, 8, 32):
            window = RandomFillWindow.bidirectional(size)
            joint = sample_window_channel(16, window, trials=6000, seed=3)
            mi = mutual_information_bits(joint)
            capacity = channel_capacity_bits(16, window)
            assert mi == pytest.approx(capacity, abs=0.12), f"W={size}"

    def test_unknown_correction_rejected(self):
        with pytest.raises(ValueError):
            mutual_information_bits(identity_joint(), correction="jackknife")

    def test_empty_joint_rejected(self):
        with pytest.raises(ValueError):
            mutual_information_bits(JointCounts())


class TestGuessingEntropy:
    def test_identity_channel_needs_one_guess(self):
        assert conditional_guessing_entropy(identity_joint()) == 1.0

    def test_independent_channel_degrades_to_blind(self):
        joint = independent_joint(m=8, trials=8000)
        blind = guessing_entropy(joint)
        conditional = conditional_guessing_entropy(joint)
        # blind uniform-8 guessing: (M + 1) / 2 = 4.5
        assert blind == pytest.approx(4.5, abs=0.3)
        assert conditional == pytest.approx(blind, abs=0.4)

    def test_monotone_in_window_size(self):
        """More randomization -> strictly more guesses needed."""
        ges = []
        for size in (2, 8, 32):
            joint = sample_window_channel(
                16, RandomFillWindow.bidirectional(size), trials=5000, seed=4)
            ges.append(conditional_guessing_entropy(joint))
        assert ges[0] < ges[1] < ges[2]

    def test_conditioning_never_hurts(self):
        joint = sample_window_channel(
            16, RandomFillWindow.bidirectional(8), trials=5000, seed=5)
        assert conditional_guessing_entropy(joint) <= guessing_entropy(joint)


class TestSuccessRateCurve:
    def test_identity_channel_succeeds_immediately(self):
        curve = success_rate_curve(identity_joint(), (1, 2), repeats=100,
                                   seed=1)
        assert curve[0][1] == 1.0
        assert curve[0][2] == 1.0  # mean rank

    def test_rate_grows_with_measurements(self):
        joint = sample_window_channel(
            16, RandomFillWindow.bidirectional(8), trials=5000, seed=6)
        curve = success_rate_curve(joint, (1, 8, 64), repeats=300, seed=2)
        rates = [rate for _n, rate, _rank in curve]
        assert rates[0] < rates[1] < rates[2]
        assert rates[2] > 0.9

    def test_rank_shrinks_with_measurements(self):
        joint = sample_window_channel(
            16, RandomFillWindow.bidirectional(8), trials=5000, seed=7)
        curve = success_rate_curve(joint, (1, 64), repeats=300, seed=3)
        assert curve[-1][2] < curve[0][2]

    def test_deterministic_for_seed(self):
        joint = sample_window_channel(
            16, RandomFillWindow.bidirectional(4), trials=2000, seed=8)
        kwargs = dict(measurement_counts=(1, 4), repeats=50, seed=9)
        assert success_rate_curve(joint, **kwargs) == \
            success_rate_curve(joint, **kwargs)

    def test_n_to_success(self):
        curve = [(1, 0.2, 5.0), (4, 0.7, 2.0), (16, 0.95, 1.1)]
        assert n_to_success(curve, target=0.9) == 16
        assert n_to_success(curve, target=0.99) is None
        with pytest.raises(ValueError):
            n_to_success(curve, target=0.0)


class TestWindowChannelSampler:
    def test_observation_stays_in_window(self):
        window = RandomFillWindow(2, 1)
        joint = sample_window_channel(8, window, trials=500, seed=1)
        for secret, obs, _count in joint.items():
            assert secret - 2 <= obs <= secret + 1

    def test_validation(self):
        window = RandomFillWindow(1, 1)
        with pytest.raises(ValueError):
            sample_window_channel(0, window, trials=10)
        with pytest.raises(ValueError):
            sample_window_channel(8, window, trials=0)
