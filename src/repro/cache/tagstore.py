"""Tag store interface: placement and replacement, no timing.

A *tag store* answers "is this line resident, and if I fill it, what gets
evicted?".  Controllers (demand fetch, random fill, the L2) add timing,
miss queues and fill strategy on top.  Keeping the two concerns separate
is what lets the paper's claim — "as a cache fill strategy, it can be
built on any cache architecture" — hold literally in this codebase: the
random fill controller composes with the set-associative store, Newcache,
PLcache, NoMo and RPcache unchanged.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.cache.context import AccessContext, DEFAULT_CONTEXT


class LineState:
    """Mutable per-line metadata (tag plus secure-cache flags)."""

    __slots__ = ("line_addr", "owner", "domain", "locked")

    def __init__(self, line_addr: int, owner: int = 0, domain: int = 0,
                 locked: bool = False):
        self.line_addr = line_addr
        self.owner = owner
        self.domain = domain
        self.locked = locked

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "L" if self.locked else ""
        return f"LineState(0x{self.line_addr:x}, owner={self.owner}{flags})"


class TagStore:
    """Abstract tag store.

    All addresses are *line* addresses.  Subclasses must implement the
    four primitives; ``flush`` and iteration have default implementations
    where possible.
    """

    #: total number of data lines the store can hold
    capacity_lines: int = 0

    def probe(self, line_addr: int, ctx: AccessContext = DEFAULT_CONTEXT) -> bool:
        """True if resident; must not change replacement state."""
        raise NotImplementedError

    def access(self, line_addr: int, ctx: AccessContext = DEFAULT_CONTEXT) -> bool:
        """Lookup for a demand access; updates recency. True on hit."""
        raise NotImplementedError

    def fill(self, line_addr: int,
             ctx: AccessContext = DEFAULT_CONTEXT) -> Optional[int]:
        """Insert ``line_addr``.

        Returns the evicted line address, or ``None`` when no eviction
        happened (empty way available, line already resident, or — for
        locking designs — the fill was refused).  Use :meth:`probe`
        afterwards to distinguish "filled without eviction" from
        "refused" if the caller needs to know.
        """
        raise NotImplementedError

    def invalidate(self, line_addr: int) -> bool:
        """Remove a line if present.  True if it was resident."""
        raise NotImplementedError

    def flush(self) -> None:
        """Empty the store (models a full cache flush)."""
        for line in list(self.resident_lines()):
            self.invalidate(line)

    def resident_lines(self) -> Iterator[int]:
        """Iterate over currently resident line addresses."""
        raise NotImplementedError

    def occupancy(self) -> int:
        return sum(1 for _ in self.resident_lines())
