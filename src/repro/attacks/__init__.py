"""Cache side-channel attacks, classified per the paper's Table I.

+------------------+---------------------------+------------------------+
|                  | Contention based          | Reuse based            |
+------------------+---------------------------+------------------------+
| Access-driven    | Prime-Probe               | Flush-Reload           |
| Timing-driven    | Evict-Time                | Cache collision        |
+------------------+---------------------------+------------------------+

``CLASSIFICATION`` encodes the table programmatically; the Table I
benchmark demonstrates each attack against the designs it defeats.
"""

from repro.attacks.collision import (
    AttackResult,
    FinalRoundCollisionAttack,
    FirstRoundCollisionAttack,
    PairEstimate,
)
from repro.attacks.evict_time import EvictTimeResult, run_evict_time
from repro.attacks.flush_reload import FlushReloadResult, run_flush_reload_trials
from repro.attacks.prime_probe import PrimeProbeResult, run_prime_probe_trials
from repro.attacks.stats import measurements_needed, signal_to_noise
from repro.attacks.victim import (
    AesTimingVictim,
    CleaningConfig,
    TableLookupVictim,
)

#: Table I of the paper: (mechanism, observation) -> attack name.
CLASSIFICATION = {
    ("contention", "access-driven"): "prime-probe",
    ("contention", "timing-driven"): "evict-time",
    ("reuse", "access-driven"): "flush-reload",
    ("reuse", "timing-driven"): "cache-collision",
}

__all__ = [
    "AttackResult",
    "AesTimingVictim",
    "CLASSIFICATION",
    "CleaningConfig",
    "EvictTimeResult",
    "FinalRoundCollisionAttack",
    "FirstRoundCollisionAttack",
    "FlushReloadResult",
    "PairEstimate",
    "PrimeProbeResult",
    "TableLookupVictim",
    "measurements_needed",
    "run_evict_time",
    "run_flush_reload_trials",
    "run_prime_probe_trials",
    "signal_to_noise",
]
