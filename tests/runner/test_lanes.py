"""Lane execution through the runner: knobs, planner, telemetry, faults.

Lane execution must be invisible except in speed: grids run with any
lane width (including 0: the scalar PR 6 path) produce identical
results, checked mode bypasses lane planning entirely, and a lane
batch that hangs splits back into the ordinary per-cell retry
machinery exactly like any other batch.
"""

import os
import time

import pytest

from repro.runner.batch import (
    DEFAULT_LANES,
    MAX_BATCH,
    BatchItem,
    CellBatch,
    plan_batches,
    resolve_lanes,
    run_batch,
)
from repro.runner.cells import CellSpec, run_cell
from repro.runner.pool import last_run_stats, run_cells
from repro.runner.result_cache import ResultCache
from repro.runner.telemetry import read_events


def _general_specs(n=4, benchmark="astar", n_refs=1500, seed=0):
    windows = ((0, 0), (0, 7), (4, 3), (16, 15), (8, 7), (0, 3))
    return [CellSpec(kind="general", benchmark=benchmark,
                     window=windows[i % len(windows)], n_refs=n_refs,
                     seed=seed)
            for i in range(n)]


class HangingLaneMember:
    """Duck-typed member of a *general* batch group that hangs once.

    It copies a real cell's ``batch_group_key()`` so the planner puts
    it into the same lane batch, but it is not a ``CellSpec`` — the
    lowering step rejects it, so inside the batch it takes the
    per-cell fallback, where its first ``run()`` sleeps for a minute.
    Attempts are counted through marker files so the count spans the
    batch attempt and the per-cell retries after the split.
    """

    config = None  # lower_cell compares this against the group config

    def __init__(self, template, state_dir, tag="sleeper"):
        self.group_key = template.batch_group_key()
        self.state_dir = state_dir
        self.tag = tag

    def __repr__(self):
        return f"HangingLaneMember({self.tag!r})"

    def batch_group_key(self):
        return self.group_key

    def run(self):
        n = 0
        while True:
            try:
                open(os.path.join(self.state_dir, f"{self.tag}.{n}"),
                     "x").close()
                break
            except FileExistsError:
                n += 1
        if n == 0:
            time.sleep(60)
        return ("ok", self.tag)


@pytest.fixture(autouse=True)
def _no_ambient_check(monkeypatch):
    # These tests pin lane behaviour, which checked mode disables by
    # design; an ambient REPRO_CHECK (e.g. a whole-suite checked run)
    # would mask it.  The checked-mode tests below set the variable
    # back explicitly after this runs.
    monkeypatch.delenv("REPRO_CHECK", raising=False)


@pytest.fixture
def nocache():
    return ResultCache(disk_dir=None, use_default_disk_dir=False)


@pytest.fixture
def state_dir(tmp_path):
    d = tmp_path / "state"
    d.mkdir()
    return str(d)


class TestResolveLanes:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_LANES", raising=False)
        assert resolve_lanes() == DEFAULT_LANES

    def test_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LANES", "8")
        assert resolve_lanes() == 8

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LANES", "8")
        assert resolve_lanes(3) == 3

    def test_zero_and_one_disable(self, monkeypatch):
        for value in ("0", "1"):
            monkeypatch.setenv("REPRO_LANES", value)
            assert resolve_lanes() < 2

    def test_garbage_env_raises_naming_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_LANES", "wide")
        with pytest.raises(ValueError, match="REPRO_LANES"):
            resolve_lanes()

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="lane width"):
            resolve_lanes(-1)


class TestLanePlanner:
    def test_general_groups_chunk_at_lane_width(self):
        specs = _general_specs(n=7)
        items = plan_batches(specs, range(len(specs)), lanes=3)
        sizes = [len(i.indices) for i in items if isinstance(i, BatchItem)]
        assert sizes == [3, 3]          # 7 cells -> 3 + 3 + 1 unbatched
        assert items[-1] == 6

    def test_width_can_exceed_max_batch(self):
        specs = _general_specs(n=MAX_BATCH + 8)
        items = plan_batches(specs, range(len(specs)),
                             lanes=MAX_BATCH + 8)
        (item,) = items
        assert len(item.indices) == MAX_BATCH + 8

    def test_disabled_lanes_keep_scalar_cap(self):
        specs = _general_specs(n=MAX_BATCH + 8)
        items = plan_batches(specs, range(len(specs)), lanes=0)
        sizes = [len(i.indices) for i in items if isinstance(i, BatchItem)]
        assert sizes == [MAX_BATCH, 8]

    def test_non_general_kinds_keep_scalar_cap(self):
        class SquareSpec:
            def __init__(self, value):
                self.value = value

            def batch_group_key(self):
                return ("square", "g")

            def run(self):
                return self.value ** 2

        specs = [SquareSpec(i) for i in range(MAX_BATCH + 4)]
        items = plan_batches(specs, range(len(specs)), lanes=256)
        sizes = [len(i.indices) for i in items if isinstance(i, BatchItem)]
        assert sizes == [MAX_BATCH, 4]


class TestLaneRuns:
    def test_widths_are_bit_identical(self, nocache, monkeypatch):
        specs = _general_specs(n=6)
        runs = {}
        for width in (0, 2, 3, 64):
            monkeypatch.setenv("REPRO_LANES", str(width))
            runs[width] = run_cells(specs, jobs=1, result_cache=nocache)
            stats = last_run_stats()
            if width >= 2:
                assert stats["vectorized_cells"] == 6
                assert stats["lane_width"] == width
            else:
                assert stats["vectorized_cells"] == 0
        assert all(r == runs[0] for r in runs.values())

    def test_batch_finish_carries_lane_fields(self, nocache, tmp_path,
                                              monkeypatch):
        monkeypatch.setenv("REPRO_LANES", "64")
        log = str(tmp_path / "telemetry.jsonl")
        run_cells(_general_specs(n=4), jobs=1, result_cache=nocache,
                  telemetry=log)
        (finish,) = [e for e in read_events(log)
                     if e["event"] == "batch_finish"]
        assert finish["lane_width"] == 64
        assert finish["vectorized_cells"] == 4
        assert finish["scalar_fallback_cells"] == 0

    def test_mixed_eligibility_batch(self, monkeypatch):
        # (2, 2) is not a power of two and the policy scheme never
        # lowers: both fall back to the scalar path inside the lane
        # batch, and every result matches its per-cell run.
        specs = _general_specs(n=3) + [
            CellSpec(kind="general", benchmark="astar", window=(2, 2),
                     n_refs=1500, seed=0),
            CellSpec(kind="general", benchmark="astar",
                     scheme="tagged_prefetch", window=(0, 0),
                     n_refs=1500, seed=0),
        ]
        batch = CellBatch("b0", "general", tuple(specs))
        results, metas, batch_meta = run_batch(batch, lanes=64)
        assert batch_meta["lane_width"] == 64
        assert batch_meta["vectorized_cells"] == 3
        assert batch_meta["scalar_fallback_cells"] == 2
        # Per-cell meta records the actual chunk size for laned members
        # and no lane field for fallbacks.
        assert [m.get("lane_width") for m in metas] == [3, 3, 3, None, None]
        assert results == [run_cell(spec) for spec in specs]

    def test_check_env_bypasses_lane_planning(self, nocache, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "256")
        specs = _general_specs(n=3)
        checked = run_cells(specs, jobs=1, result_cache=nocache)
        stats = last_run_stats()
        assert stats["batches"] == 0
        assert stats["vectorized_cells"] == 0
        assert stats["checks_run"] > 0
        monkeypatch.delenv("REPRO_CHECK")
        assert checked == run_cells(specs, jobs=1, result_cache=nocache)

    def test_run_batch_checked_guard_skips_lanes(self, monkeypatch):
        # Belt-and-braces: even a batch dispatched under REPRO_CHECK
        # (the parent normally never plans one) runs per-cell.
        monkeypatch.setenv("REPRO_CHECK", "256")
        batch = CellBatch("b0", "general", tuple(_general_specs(n=2)))
        _results, metas, batch_meta = run_batch(batch, lanes=64)
        assert "lane_width" not in batch_meta
        assert all("lane_width" not in m for m in metas)
        assert batch_meta.get("checks_run", 0) > 0


class TestLaneBatchFaults:
    def test_hung_lane_batch_times_out_splits_and_retries_per_cell(
            self, nocache, state_dir, tmp_path):
        specs = _general_specs(n=3)
        specs.append(HangingLaneMember(specs[0], state_dir))
        log = str(tmp_path / "telemetry.jsonl")
        results = run_cells(specs, jobs=2, timeout=1.0, retries=2,
                            result_cache=nocache, telemetry=log)
        # The lane batch hung on the duck-typed member; after the
        # timeout the batch split and every cell — laned members
        # included — completed through the per-cell machinery.
        assert results[:3] == [run_cell(spec) for spec in specs[:3]]
        assert results[3] == ("ok", "sleeper")
        stats = last_run_stats()
        assert stats["timeouts"] >= 1
        assert stats["pool_restarts"] >= 1
        events = read_events(log)
        timeout_events = [e for e in events if e["event"] == "batch_timeout"]
        assert timeout_events and 3 in timeout_events[0]["cells"]
        assert any(e["event"] == "batch_split" for e in events)
        # Marker files prove the hang fired inside the batch attempt
        # and the per-cell retry ran it once more.
        markers = [n for n in os.listdir(state_dir)
                   if n.startswith("sleeper.")]
        assert len(markers) == 2
