"""Batch planning and execution for the supervised runner.

``run_cells`` plans its *pending* (cache-missed) cells into batches:
cells whose specs report the same ``batch_group_key()`` share per-group
work — for general-perf cells one trace decode and one L2 warm replay
(:mod:`repro.cpu.batch`), for leakage cells the dispatch overhead — and
a batch is the unit submitted to a worker.  Supervision semantics are
preserved by construction: a batch that fails, hangs, or dies with its
pool is *split* and its member cells requeued individually, where the
ordinary per-cell retry/timeout machinery applies; each finished cell
still lands in the result cache one by one.

Batching is on by default and controlled by ``--batch/--no-batch`` or
``REPRO_BATCH`` (:func:`resolve_batch`); checked mode (``REPRO_CHECK``)
disables planning entirely so every cell takes the per-cell oracle
path.  Within a ``"general"`` batch, eligible cells additionally
advance together as *lanes* of one kernel call
(:mod:`repro.cpu.lanes`), chunked at the lane width (``--lanes`` /
``REPRO_LANES``, :func:`resolve_lanes`; below 2 every cell keeps the
scalar flat kernel).  Results are bit-identical with batching and
lanes on or off, for any jobs count or lane width, because both
kernels are exact and chunk boundaries carry no state between cells.
"""

from __future__ import annotations

import gc
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.runner.cells import run_cell
from repro.runner.telemetry import worker_meta

#: smallest group worth batching — a singleton is just a cell
MIN_BATCH = 2

#: largest batch submitted as one work item; bounds the blast radius of
#: a split (one bad cell re-runs at most this many siblings' dispatch)
#: and keeps per-batch timeouts meaningful
MAX_BATCH = 32

#: default lane width: how many cells one lane-kernel call advances.
#: The kernel loops lanes in C, so wider mostly amortizes the shared
#: column setup; the cap bounds a split's blast radius like MAX_BATCH
DEFAULT_LANES = 64

#: ``REPRO_BATCH`` values that disable / enable batching
_FALSE_VALUES = frozenset({"0", "off", "no", "false"})
_TRUE_VALUES = frozenset({"1", "on", "yes", "true"})


def resolve_batch(batch: Optional[bool] = None) -> bool:
    """Batching switch: argument > ``REPRO_BATCH`` > on."""
    if batch is not None:
        return bool(batch)
    env = os.environ.get("REPRO_BATCH", "").strip().lower()
    if not env:
        return True
    if env in _FALSE_VALUES:
        return False
    if env in _TRUE_VALUES:
        return True
    raise ValueError(f"REPRO_BATCH must be a boolean flag (1/0/on/off/yes/no), got {env!r}")


def resolve_lanes(lanes: Optional[int] = None) -> int:
    """Lane width: argument > ``REPRO_LANES`` > :data:`DEFAULT_LANES`.

    A width below 2 (``REPRO_LANES=0`` or ``1``) disables lane
    execution — batches still amortize decode but every member runs
    the scalar flat kernel, exactly the PR 6 path.
    """
    if lanes is None:
        env = os.environ.get("REPRO_LANES", "").strip()
        if not env:
            return DEFAULT_LANES
        try:
            lanes = int(env)
        except ValueError:
            raise ValueError(f"REPRO_LANES must be an integer, got {env!r}")
    if lanes < 0:
        raise ValueError(f"lane width must be >= 0, got {lanes}")
    return lanes


class CellBatch:
    """A picklable group of compatible cell specs, dispatched as one.

    ``kind`` is the first element of the members' shared group key:
    ``"general"`` batches share trace decode + warm L2 state through
    the flat kernel; any other kind only amortizes dispatch.
    """

    __slots__ = ("batch_id", "kind", "cells")

    def __init__(self, batch_id: str, kind: str, cells: Tuple):
        self.batch_id = batch_id
        self.kind = kind
        self.cells = cells

    def __len__(self) -> int:
        return len(self.cells)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CellBatch({self.batch_id!r}, kind={self.kind!r}, cells={len(self.cells)})"


class BatchItem:
    """One batched work-queue entry: the member indices + their batch."""

    __slots__ = ("indices", "batch")

    def __init__(self, indices: Tuple[int, ...], batch: CellBatch):
        self.indices = indices
        self.batch = batch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BatchItem({self.batch.batch_id!r}, indices={self.indices})"


def plan_batches(
    specs: Sequence, pending: Sequence[int], jobs: int = 1, lanes: Optional[int] = None
) -> List:
    """Group pending cell indices into a work list.

    Returns a list of plain ``int`` indices (unbatched cells) and
    :class:`BatchItem` entries, ordered by each item's first index so
    sequential execution keeps sweep order.  Only specs exposing
    ``batch_group_key()`` (returning a hashable key, or ``None`` to
    opt out) are grouped; group keys are compared between *pending*
    cells only — fully cached cells were short-circuited before
    planning and never reach here.

    ``"general"`` groups chunk at the lane width
    (:func:`resolve_lanes`) so one batch is one lane-kernel call; other
    kinds keep the :data:`MAX_BATCH` cap.  With ``jobs`` workers the
    batch size is additionally capped at ``ceil(pending / jobs)`` so a
    small grid still spreads across the pool; at high jobs counts this
    degrades gracefully toward per-cell dispatch without affecting
    results.
    """
    groups: "Dict[object, List[int]]" = {}
    singles: List[int] = []
    for index in pending:
        key_of = getattr(specs[index], "batch_group_key", None)
        key = key_of() if key_of is not None else None
        if key is None:
            singles.append(index)
            continue
        bucket = groups.get(key)
        if bucket is None:
            groups[key] = [index]
        else:
            bucket.append(index)

    lane_width = resolve_lanes(lanes)
    jobs_cap = None
    if jobs > 1:
        jobs_cap = max(1, -(-len(pending) // jobs))

    items: List = list(singles)
    sequence = 0
    for key, indices in groups.items():
        kind = str(key[0]) if isinstance(key, tuple) and key else str(key)
        max_batch = MAX_BATCH
        if kind == "general" and lane_width >= MIN_BATCH:
            max_batch = lane_width
        if jobs_cap is not None:
            max_batch = min(max_batch, jobs_cap)
        for start in range(0, len(indices), max_batch):
            chunk = indices[start : start + max_batch]
            if len(chunk) < MIN_BATCH:
                items.extend(chunk)
                continue
            batch = CellBatch(
                batch_id=f"b{sequence}", kind=kind, cells=tuple(specs[i] for i in chunk)
            )
            items.append(BatchItem(tuple(chunk), batch))
            sequence += 1
    items.sort(key=_first_index)
    return items


def _first_index(item) -> int:
    return item.indices[0] if type(item) is BatchItem else item


def run_batch(batch: CellBatch, lanes: Optional[int] = None):
    """Worker entry point: run every cell of a batch in-process.

    Returns ``(results, metas, batch_meta)`` with one result + meta per
    cell in batch order.  ``"general"`` batches build the shared group
    state once, then advance the eligible cells as lanes of the lane
    kernel (:func:`repro.cpu.batch.run_lane_cells`), grouped by their
    shared kernel parameters and chunked at the lane width
    (:func:`resolve_lanes`; below 2 every eligible cell takes the
    scalar flat kernel instead — the PR 6 path).  Cells the kernels do
    not cover — and every cell when ``REPRO_CHECK`` is active, as a
    belt-and-braces guard (the parent already skips planning under
    checked mode) — fall back to :func:`run_cell` individually inside
    the batch.  Any exception propagates whole: the supervisor splits
    the batch and retries the cells one by one.

    A lane call's wall time is attributed evenly across its member
    cells' ``worker_duration_s`` so per-cell latency stays meaningful.
    """
    from repro.check import check_rate_from_env, check_totals

    was_enabled = gc.isenabled()
    gc.disable()
    try:
        checked = check_rate_from_env() is not None
        shared = None
        lowered = [None] * len(batch.cells)
        if batch.kind == "general" and not checked:
            from repro.cpu.batch import group_state_for, lower_cell
            shared = group_state_for(batch.cells[0])
            lowered = [lower_cell(spec, shared) for spec in batch.cells]
        lane_width = resolve_lanes(lanes)

        # Lane plan: eligible cells sharing identical kernel parameters
        # advance together, chunked at the lane width.
        lane_chunks: List[List[int]] = []
        if shared is not None and lane_width >= MIN_BATCH:
            by_params: "Dict[object, List[int]]" = {}
            for i, low in enumerate(lowered):
                if low is not None:
                    by_params.setdefault(low.shared_key(), []).append(i)
            for indices in by_params.values():
                for start in range(0, len(indices), lane_width):
                    chunk = indices[start : start + lane_width]
                    if len(chunk) >= MIN_BATCH:
                        lane_chunks.append(chunk)

        results: List = [None] * len(batch.cells)
        metas: List = [None] * len(batch.cells)
        checks_before = check_totals()["checks_run"]

        vectorized = 0
        laned = set()
        for chunk in lane_chunks:
            from repro.cpu.batch import run_lane_cells
            started = time.perf_counter()
            lane_results = run_lane_cells(shared, [lowered[i] for i in chunk])
            share = (time.perf_counter() - started) / len(chunk)
            for i, result in zip(chunk, lane_results):
                meta = worker_meta(share)
                meta["batch_amortized_decode"] = True
                meta["lane_width"] = len(chunk)
                results[i] = result
                metas[i] = meta
            vectorized += len(chunk)
            laned.update(chunk)

        kernel_cells = vectorized
        for i, spec in enumerate(batch.cells):
            if i in laned:
                continue
            started = time.perf_counter()
            result = None
            if lowered[i] is not None:
                from repro.cpu.batch import run_lowered_cell
                result = run_lowered_cell(shared, lowered[i])
            amortized = result is not None
            if result is None:
                result = run_cell(spec)
            kernel_cells += amortized
            meta = worker_meta(time.perf_counter() - started)
            meta["batch_amortized_decode"] = amortized
            results[i] = result
            metas[i] = meta
        batch_meta = {"decode_reuses": max(0, kernel_cells - 1)}
        if shared is not None:
            batch_meta["lane_width"] = lane_width
            batch_meta["vectorized_cells"] = vectorized
            batch_meta["scalar_fallback_cells"] = len(batch.cells) - vectorized
        checks_run = check_totals()["checks_run"] - checks_before
        if checks_run:
            batch_meta["checks_run"] = checks_run
        return results, metas, batch_meta
    finally:
        if was_enabled:
            gc.enable()
