"""Tests for the Equation (5) measurement model."""

import math

import pytest

from repro.attacks.stats import measurements_needed, signal_to_noise


class TestMeasurementsNeeded:
    def test_zero_signal_needs_infinite(self):
        assert measurements_needed(0.0, 21, 1, 50.0) == math.inf

    def test_scales_inverse_square(self):
        n1 = measurements_needed(0.6, 21, 1, 50.0)
        n2 = measurements_needed(0.3, 21, 1, 50.0)
        assert n2 == pytest.approx(4 * n1)

    def test_more_noise_needs_more(self):
        assert measurements_needed(0.5, 21, 1, 100.0) > \
            measurements_needed(0.5, 21, 1, 50.0)

    def test_higher_confidence_needs_more(self):
        assert measurements_needed(0.5, 21, 1, 50.0, alpha=0.999) > \
            measurements_needed(0.5, 21, 1, 50.0, alpha=0.9)

    def test_plausible_magnitude(self):
        # P1-P2=0.65, 20-cycle gap, sigma 50: tens of thousands
        n = measurements_needed(0.65, 21, 1, 50.0)
        assert 10 < n < 10_000

    def test_validation(self):
        with pytest.raises(ValueError):
            measurements_needed(0.5, 21, 1, 0.0)
        with pytest.raises(ValueError):
            measurements_needed(0.5, 1, 21, 50.0)
        with pytest.raises(ValueError):
            measurements_needed(0.5, 21, 1, 50.0, alpha=0.4)


class TestSnr:
    def test_equation4(self):
        assert signal_to_noise(0.5, 21, 1, 10.0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            signal_to_noise(0.5, 21, 1, 0.0)
