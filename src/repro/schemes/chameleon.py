"""Chameleon Cache: random replacement + a tiny fully-associative victim.

Chameleon Cache (arXiv 2209.14673) makes a set-associative cache with
random replacement *look* fully associative to an attacker: a line
displaced from its set is not evicted but parked in a small
fully-associative victim cache; only random victim-cache evictions
leave the cache for real.  A victim-cache hit silently migrates the
line back to its home set (displacing a random way into the victim in
its place), so from the outside the eviction an attacker tries to
observe is decoupled from the set contention that caused it —
approximating fully-associative random replacement at set-associative
lookup cost.

Like the other mapping/replacement randomizers it remains demand fetch:
Flush-Reload still works, and the occupancy channel sees every victim
fill displace one attacker line regardless of where it lands.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.cache.context import AccessContext, DEFAULT_CONTEXT
from repro.cache.tagstore import TagStore
from repro.util.rng import HardwareRng, derive_seed


class ChameleonCache(TagStore):
    """SA store with random replacement and a random-evicting victim cache.

    ``capacity_lines`` counts the main array *plus* the victim entries —
    both hold live, probeable lines.
    """

    def __init__(
        self,
        size_bytes: int,
        associativity: int = 4,
        line_size: int = 64,
        victim_entries: int = 8,
        seed: int = 0,
    ):
        if size_bytes <= 0 or size_bytes % (associativity * line_size):
            raise ValueError(
                f"size {size_bytes} not divisible into {associativity}-way "
                f"sets of {line_size}-byte lines"
            )
        if victim_entries <= 0:
            raise ValueError(f"victim_entries must be positive, got {victim_entries}")
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.line_size = line_size
        self.victim_entries = victim_entries
        self.main_lines = size_bytes // line_size
        self.capacity_lines = self.main_lines + victim_entries
        num_sets = self.main_lines // associativity
        if num_sets & (num_sets - 1):
            raise ValueError("chameleon cache needs a power-of-two set count")
        self._set_mask = num_sets - 1
        self._sets: List[List[int]] = [[] for _ in range(num_sets)]
        self._victim: List[int] = []
        self._rng = HardwareRng(derive_seed(seed, "chameleon", "repl"))

    # -- internals ---------------------------------------------------------

    def _displace_to_victim(self, cache_set: List[int]) -> None:
        """Move a random way of a full set into the victim cache."""
        way = self._rng.draw_below(len(cache_set))
        self._victim.append(cache_set.pop(way))

    def _evict_from_victim(self) -> int:
        """A true eviction: a uniformly random victim-cache entry leaves."""
        slot = self._rng.draw_below(len(self._victim))
        return self._victim.pop(slot)

    # -- TagStore interface ------------------------------------------------

    def probe(self, line_addr: int, ctx: AccessContext = DEFAULT_CONTEXT) -> bool:
        return line_addr in self._sets[line_addr & self._set_mask] or line_addr in self._victim

    def access(self, line_addr: int, ctx: AccessContext = DEFAULT_CONTEXT) -> bool:
        cache_set = self._sets[line_addr & self._set_mask]
        if line_addr in cache_set:
            return True
        try:
            slot = self._victim.index(line_addr)
        except ValueError:
            return False
        # Victim hit: migrate home, swapping a random way into the victim
        # (net victim occupancy unchanged — no true eviction on a hit).
        self._victim.pop(slot)
        if len(cache_set) >= self.associativity:
            self._displace_to_victim(cache_set)
        cache_set.append(line_addr)
        return True

    def fill(self, line_addr: int, ctx: AccessContext = DEFAULT_CONTEXT) -> Optional[int]:
        cache_set = self._sets[line_addr & self._set_mask]
        if line_addr in cache_set or line_addr in self._victim:
            return None
        if len(cache_set) >= self.associativity:
            self._displace_to_victim(cache_set)
        cache_set.append(line_addr)
        if len(self._victim) > self.victim_entries:
            return self._evict_from_victim()
        return None

    def invalidate(self, line_addr: int) -> bool:
        cache_set = self._sets[line_addr & self._set_mask]
        if line_addr in cache_set:
            cache_set.remove(line_addr)
            return True
        if line_addr in self._victim:
            self._victim.remove(line_addr)
            return True
        return False

    def flush(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()
        self._victim.clear()

    def resident_lines(self) -> Iterator[int]:
        for cache_set in self._sets:
            yield from cache_set
        yield from self._victim

    # -- checked-mode support ----------------------------------------------

    def victim_contents(self) -> List[int]:
        """The victim cache's current lines (invariant sanitizer + tests)."""
        return list(self._victim)

    def set_contents(self, set_index: int) -> List[int]:
        """Line addresses of one main set (tests inspect this)."""
        return list(self._sets[set_index])
