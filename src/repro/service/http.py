"""Minimal asyncio HTTP/1.1 plumbing for the sweep service.

Deliberately tiny and dependency-free: the container ships no web
framework, and the service needs exactly four things — parse a
request, match a route with ``{placeholders}``, send a JSON response,
and stream a body with chunked transfer encoding.  Everything is
stdlib ``asyncio`` streams.

Connections are handled one request at a time with
``Connection: close`` semantics (the clients this serves — the bundled
:mod:`repro.service.client`, curl, CI smoke — open a connection per
call).  Malformed requests get structured JSON errors, never a
traceback on the wire.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

#: request body ceiling (a 4096-cell grid of full-config specs is ~3 MB)
MAX_BODY_BYTES = 32 * 1024 * 1024

#: request line + single header line ceiling
_MAX_LINE = 16 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """An HTTP-level refusal with a structured JSON body."""

    def __init__(self, status: int, code: str, message: str, **extra: Any):
        super().__init__(message)
        self.status = status
        self.code = code
        self.extra = extra

    def payload(self) -> Dict[str, Any]:
        return {"error": {"code": self.code, "message": str(self), **self.extra}}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes
    client: str
    params: Dict[str, str] = field(default_factory=dict)

    def json(self) -> Any:
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise HttpError(400, "bad_json", f"request body is not valid JSON: {error}") from None

    def client_id(self) -> str:
        """Rate-limit key: explicit header first, else the peer host."""
        return self.headers.get("x-repro-client", self.client)

    def int_query(self, name: str, default: int) -> int:
        raw = self.query.get(name)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError:
            raise HttpError(
                400,
                "bad_query",
                f"query parameter {name!r} must be an integer, got {raw!r}",
            ) from None


async def read_request(reader: asyncio.StreamReader, client: str) -> Optional[Request]:
    """Parse one request; ``None`` on a cleanly closed connection."""
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError:
        return None
    except asyncio.LimitOverrunError:
        raise HttpError(400, "bad_request", "request line too long") from None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise HttpError(400, "bad_request", "malformed request line")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    while True:
        try:
            raw = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise HttpError(400, "bad_request", "truncated request headers") from None
        if len(raw) > _MAX_LINE:
            raise HttpError(400, "bad_request", "header line too long")
        text = raw.decode("latin-1").strip()
        if not text:
            break
        name, sep, value = text.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            raise HttpError(400, "bad_request", "malformed Content-Length") from None
        if n > MAX_BODY_BYTES:
            raise HttpError(
                413,
                "body_too_large",
                f"request body of {n} bytes exceeds the {MAX_BODY_BYTES}-byte ceiling",
            )
        try:
            body = await reader.readexactly(n)
        except asyncio.IncompleteReadError:
            raise HttpError(
                400, "bad_request", "request body shorter than Content-Length"
            ) from None
    split = urlsplit(target)
    query = dict(parse_qsl(split.query))
    return Request(
        method=method.upper(),
        path=unquote(split.path),
        query=query,
        headers=headers,
        body=body,
        client=client,
    )


def _head(status: int, content_type: str, extra: str = "") -> bytes:
    reason = _REASONS.get(status, "Unknown")
    return (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Connection: close\r\n{extra}"
    ).encode("latin-1")


def json_response(status: int, payload: Any) -> bytes:
    body = (json.dumps(payload, sort_keys=True, default=repr) + "\n").encode("utf-8")
    return _head(status, "application/json", f"Content-Length: {len(body)}\r\n\r\n") + body


class ChunkWriter:
    """Chunked transfer encoding for the ``/events`` stream."""

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.started = False

    async def start(self, content_type: str = "application/x-ndjson") -> None:
        self.writer.write(_head(200, content_type, "Transfer-Encoding: chunked\r\n\r\n"))
        await self.writer.drain()
        self.started = True

    async def send(self, data: bytes) -> None:
        if not data:
            return
        self.writer.write(f"{len(data):x}\r\n".encode("latin-1"))
        self.writer.write(data + b"\r\n")
        await self.writer.drain()

    async def finish(self) -> None:
        self.writer.write(b"0\r\n\r\n")
        await self.writer.drain()


#: handler signature: ``async (request, writer) -> bytes | None`` —
#: bytes is a complete response; ``None`` means the handler streamed
#: its own response through the writer.
Handler = Callable[..., Any]


class Router:
    """Method + path-template routing with ``{param}`` captures."""

    def __init__(self) -> None:
        self._routes: List[Tuple[str, Tuple[str, ...], Handler]] = []

    def add(self, method: str, template: str, handler: Handler) -> None:
        segments = tuple(seg for seg in template.strip("/").split("/") if seg)
        self._routes.append((method.upper(), segments, handler))

    def match(self, request: Request) -> Handler:
        segments = tuple(seg for seg in request.path.strip("/").split("/") if seg)
        path_matched = False
        for method, template, handler in self._routes:
            params = _match_segments(template, segments)
            if params is None:
                continue
            path_matched = True
            if method != request.method:
                continue
            request.params = params
            return handler
        if path_matched:
            raise HttpError(
                405,
                "method_not_allowed",
                f"{request.method} is not supported on {request.path}",
            )
        raise HttpError(404, "not_found", f"no route for {request.path}")


def _match_segments(
    template: Tuple[str, ...], segments: Tuple[str, ...]
) -> Optional[Dict[str, str]]:
    if len(template) != len(segments):
        return None
    params: Dict[str, str] = {}
    for pattern, actual in zip(template, segments):
        if pattern.startswith("{") and pattern.endswith("}"):
            params[pattern[1:-1]] = actual
        elif pattern != actual:
            return None
    return params
