"""Named SPEC-CPU2006-like benchmarks (the Figure 8/9/10 workloads).

Each entry composes the synthetic primitives with parameters chosen to
match the benchmark's published locality character, which Figure 9 of
the paper itself summarizes:

* ``sjeng``, ``hmmer``, ``h264ref``, ``bzip2``, ``astar``, ``milc`` —
  spatial locality spanning "about four neighborhood cache lines or
  less"; random fill with large windows should *hurt* them (Figure 10),
* ``lbm``, ``libquantum`` — "irregular streaming patterns ... wider
  spatial locality beyond a cache line, especially in the forward
  direction"; random fill with a forward window should *help*.

The traces are deterministic given (name, n_refs, seed).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.cpu.trace import Trace
from repro.workloads.synthetic import locality_mixture, streaming, strided

#: base address for workload data, clear of the AES layout regions
WORKLOAD_BASE = 0x100_0000

#: bump whenever any generator's output changes for the same
#: (name, n_refs, seed) — it keys the on-disk trace cache, so stale
#: cached traces are invalidated automatically.  (The move to columnar
#: traces did not bump it: record content is unchanged, and the disk
#: layer reads legacy record-list entries transparently.)
GENERATOR_VERSION = 1

_GeneratorFn = Callable[[int, int], Trace]


def _astar(n_refs: int, seed: int) -> Trace:
    # Path-search over a large graph: mostly irregular, mild neighbors.
    return locality_mixture(
        n_refs, WORKLOAD_BASE, working_set_lines=4096, hot_lines=128,
        p_hot=0.35, p_neighbor=0.25, neighbor_span=2, refs_per_line=2,
        write_ratio=0.25, gap=4, seed=seed)


def _bzip2(n_refs: int, seed: int) -> Trace:
    # Block-sorting compression: strong hot set + short spatial runs.
    return locality_mixture(
        n_refs, WORKLOAD_BASE, working_set_lines=4096, hot_lines=256,
        p_hot=0.55, p_neighbor=0.25, neighbor_span=3, refs_per_line=4,
        write_ratio=0.3, gap=4, seed=seed)


def _h264ref(n_refs: int, seed: int) -> Trace:
    # Video encoding: high reuse of reference frames, short runs.
    return locality_mixture(
        n_refs, WORKLOAD_BASE, working_set_lines=2048, hot_lines=384,
        p_hot=0.65, p_neighbor=0.25, neighbor_span=4, refs_per_line=4,
        write_ratio=0.2, gap=5, seed=seed)


def _sjeng(n_refs: int, seed: int) -> Trace:
    # Chess search: scattered hot tables, near-zero spatial locality.
    return locality_mixture(
        n_refs, WORKLOAD_BASE, working_set_lines=4096, hot_lines=192,
        p_hot=0.85, p_neighbor=0.03, neighbor_span=1, refs_per_line=1,
        write_ratio=0.15, gap=6, seed=seed)


def _milc(n_refs: int, seed: int) -> Trace:
    # Lattice QCD: large strided sweeps, little next-line locality.
    return strided(
        n_refs, WORKLOAD_BASE, array_lines=16384, stride_lines=4,
        refs_per_line=2, write_ratio=0.15, gap=6, seed=seed)


def _hmmer(n_refs: int, seed: int) -> Trace:
    # Profile HMM search: tight hot loop over scattered profile rows.
    return locality_mixture(
        n_refs, WORKLOAD_BASE, working_set_lines=2048, hot_lines=160,
        p_hot=0.9, p_neighbor=0.07, neighbor_span=2, refs_per_line=4,
        write_ratio=0.1, gap=4, seed=seed)


def _lbm(n_refs: int, seed: int) -> Trace:
    # Lattice Boltzmann: forward streaming with writes, slight stride
    # irregularity a next-line prefetcher cannot fully track.
    return streaming(
        n_refs, WORKLOAD_BASE, array_lines=262144, refs_per_line=6,
        stride_lines_max=2, write_ratio=0.4, gap=4, seed=seed)


def _libquantum(n_refs: int, seed: int) -> Trace:
    # Quantum simulation: long irregular read streams over a huge array.
    return streaming(
        n_refs, WORKLOAD_BASE, array_lines=524288, refs_per_line=8,
        stride_lines_max=3, write_ratio=0.05, gap=4, seed=seed)


SPEC_BENCHMARKS: Dict[str, _GeneratorFn] = {
    "astar": _astar,
    "bzip2": _bzip2,
    "h264ref": _h264ref,
    "sjeng": _sjeng,
    "milc": _milc,
    "hmmer": _hmmer,
    "lbm": _lbm,
    "libquantum": _libquantum,
}

#: order used by the paper's Figure 8 x-axis
FIGURE8_ORDER = ("sjeng", "lbm", "libquantum", "h264ref",
                 "astar", "milc", "bzip2", "hmmer")

#: the benchmarks with streaming patterns that random fill accelerates
STREAMING_BENCHMARKS = ("lbm", "libquantum")


def make_workload(name: str, n_refs: int = 100_000,
                  seed: int = 0) -> Trace:
    """Generate a named benchmark trace."""
    try:
        generator = SPEC_BENCHMARKS[name]
    except KeyError:
        known = ", ".join(sorted(SPEC_BENCHMARKS))
        raise ValueError(f"unknown benchmark {name!r}; known: {known}") from None
    return generator(n_refs, seed)
