"""Tests for the trace-driven timing model."""

import pytest

from repro.cache.hierarchy import build_hierarchy
from repro.cpu.timing import SimResult, TimingModel, _MlpWindow


def make_model(**kwargs):
    h = build_hierarchy()
    return TimingModel(h.l1, **kwargs), h


class TestMlpWindow:
    def test_no_charge_when_hidden(self):
        w = _MlpWindow(limit=2, credit=8)
        assert w.note_miss(100, 105) == 100  # 5 < credit

    def test_amortized_charge(self):
        w = _MlpWindow(limit=2, credit=0)
        assert w.note_miss(100, 120) == 110  # 20 cycles / 2

    def test_serial_when_limit_one(self):
        w = _MlpWindow(limit=1, credit=0)
        assert w.note_miss(100, 120) == 120

    def test_credit_subtracted(self):
        w = _MlpWindow(limit=1, credit=8)
        assert w.note_miss(100, 120) == 112


class TestTimingModel:
    def test_all_hit_ipc_near_issue_bound(self):
        model, h = make_model()
        h.l1.tag_store.fill(0)
        trace = [(0, 4, 0)] * 1000
        result = model.run(trace)
        # 4 instructions/ref at 4-wide = 1 cycle + 1 hit cycle
        assert 1.8 < result.ipc <= 2.2

    def test_misses_slow_things_down(self):
        model, h = make_model()
        hit_trace = [(0, 4, 0)] * 500
        miss_trace = [(i * 64, 4, 0) for i in range(500)]
        assert model.run(hit_trace).ipc > \
            TimingModel(build_hierarchy().l1).run(miss_trace).ipc

    def test_result_counters(self):
        model, h = make_model()
        trace = [(0, 1, 0), (0, 1, 0), (64, 1, 0)]
        result = model.run(trace)
        assert result.instructions == 3
        assert result.l1_accesses == 3
        assert result.l1_demand_misses == 2

    def test_mpki(self):
        r = SimResult(instructions=2000, cycles=1, l1_accesses=0, l1_hits=0,
                      l1_demand_misses=10, l2_accesses=0, l2_demand_misses=4,
                      memory_lines=0)
        assert r.l1_mpki == 5.0
        assert r.l2_mpki == 2.0

    def test_merged_burst_charged_once(self):
        """Eight refs to one in-flight line cost ~one miss, not eight."""
        model, _ = make_model(mlp=1, overlap_credit=0)
        burst = [(e * 8, 1, 0) for e in range(8)]  # one line
        r_burst = model.run(burst)
        model2, _ = make_model(mlp=1, overlap_credit=0)
        r_two = model2.run([(0, 1, 0), (64, 1, 0)])  # two full misses
        assert r_burst.cycles < r_two.cycles

    def test_validation(self):
        h = build_hierarchy()
        with pytest.raises(ValueError):
            TimingModel(h.l1, issue_width=0)
        with pytest.raises(ValueError):
            TimingModel(h.l1, overlap_credit=-1)
        with pytest.raises(ValueError):
            TimingModel(h.l1, mlp=0)

    def test_deterministic(self):
        trace = [(i * 64 % 4096, 2, 0) for i in range(300)]
        a = TimingModel(build_hierarchy().l1).run(trace)
        b = TimingModel(build_hierarchy().l1).run(trace)
        assert a.cycles == b.cycles

    def test_ipc_zero_for_empty(self):
        model, _ = make_model()
        assert model.run([]).ipc == 0.0


class TestChargedPrune:
    def test_prune_threshold_is_invisible_to_results(self, monkeypatch):
        """Sweeping the charged map early vs. never must not change
        timing: pruned entries are exactly those that can no longer
        contribute a positive exposed stall."""
        import repro.cpu.timing as timing
        from repro.experiments.perf_general import run_general_workload
        from repro.workloads.spec import make_workload

        trace = make_workload("milc", n_refs=6000, seed=3)
        baseline = run_general_workload("milc", (0, 7), trace=trace, seed=3)
        monkeypatch.setattr(timing, "CHARGED_PRUNE_THRESHOLD", 16)
        aggressive = run_general_workload("milc", (0, 7), trace=trace, seed=3)
        assert aggressive == baseline

    def test_prune_charged_drops_only_past_entries(self):
        from repro.cpu.timing import prune_charged
        charged = {1: 10, 2: 50, 3: 30}
        assert prune_charged(charged, now=30) == {2: 50}
