"""Cache substrate: tag stores, replacement, MSHRs, L1/L2 controllers."""

from repro.cache.context import AccessContext, DEFAULT_CONTEXT
from repro.cache.controller import (
    AccessResult,
    DemandFetchPolicy,
    FillPolicy,
    L1Controller,
    MissPlan,
)
from repro.cache.hierarchy import Hierarchy, build_hierarchy
from repro.cache.l2 import L2Cache
from repro.cache.mshr import MissEntry, MissQueue, RequestType
from repro.cache.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)
from repro.cache.set_associative import SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.cache.tagstore import LineState, TagStore

__all__ = [
    "AccessContext",
    "AccessResult",
    "CacheStats",
    "DEFAULT_CONTEXT",
    "DemandFetchPolicy",
    "FifoPolicy",
    "FillPolicy",
    "Hierarchy",
    "L1Controller",
    "L2Cache",
    "LineState",
    "LruPolicy",
    "MissEntry",
    "MissPlan",
    "MissQueue",
    "RandomPolicy",
    "ReplacementPolicy",
    "RequestType",
    "SetAssociativeCache",
    "TagStore",
    "build_hierarchy",
    "make_policy",
]
