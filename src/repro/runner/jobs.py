"""Job handles around ``run_cells``: submit / poll / cancel.

``run_cells`` is a blocking call — fine for a CLI sweep, wrong for a
server that must answer ``GET /sweeps/{id}`` while the grid is still
simulating.  This module adds the non-blocking layer the sweep service
(:mod:`repro.service`) is built on, with no HTTP anywhere in it:

* :class:`JobHandle` — one submitted sweep: its lifecycle state
  (``queued -> running -> done | failed | cancelled``), the results and
  per-run stats once finished, and ``poll()`` / ``cancel()`` /
  ``result()`` accessors, all thread-safe;
* :class:`JobRunner` — a bounded FIFO work queue drained by one
  background executor thread.  Jobs run strictly one at a time: the
  *intra*-sweep parallelism (the process pool, ``jobs=``) already
  saturates the machine, so running sweeps concurrently would only make
  them contend.  ``submit`` refuses new work with :class:`JobQueueFull`
  once ``queue_depth`` sweeps are waiting — the caller turns that into
  a structured 429.

Cancellation is cooperative: a queued job is cancelled outright (it
never runs); a running job cannot be preempted mid-``run_cells`` — its
handle moves to ``cancelling`` and settles as ``cancelled`` when the
run returns, with its results discarded.  Cells the run checkpointed
into the result cache before the cancel stay checkpointed (a re-submit
resumes from them), exactly like an interrupted CLI sweep.

Graceful drain (the service's SIGTERM path) is a third lifecycle verb:
:meth:`JobRunner.drain` stops the executor from *starting* anything
new — the running job finishes normally, queued jobs stay queued (not
cancelled: their journal records keep them recoverable by the next
process) — and :meth:`JobRunner.wait_idle` blocks until the executor
has parked.  ``shutdown(cancel_queued=False)`` afterwards leaves the
queued handles untouched.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence

from repro.runner.pool import run_cells

#: terminal :class:`JobHandle` states
FINISHED_STATES = frozenset({"done", "failed", "cancelled"})

_job_ids = itertools.count(1)


class JobQueueFull(RuntimeError):
    """The runner's bounded work queue is at capacity."""


class JobHandle:
    """One submitted sweep; all accessors are thread-safe."""

    def __init__(self, specs: Sequence, run_kwargs: Dict):
        self.job_id = next(_job_ids)
        self.specs = specs
        self.run_kwargs = run_kwargs
        self.submitted_at = time.monotonic()
        self.queue_wait_s: Optional[float] = None
        self.run_seconds: Optional[float] = None
        self.error: Optional[str] = None
        self.stats: Dict = {}
        self._state = "queued"
        self._results: Optional[List] = None
        self._lock = threading.Lock()
        self._finished = threading.Event()
        self._settled = threading.Event()
        self._cancel_requested = False

    # -- state ---------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def finished(self) -> bool:
        return self.state in FINISHED_STATES

    @property
    def settled(self) -> bool:
        """True once the job is finished AND its transition observers
        have run.  ``finished`` flips inside ``_finish`` *before* the
        executor notifies observers, so a follower that stops at
        ``finished`` can miss side effects the observers produce (the
        service's ``sweep_finish`` telemetry row); followers of those
        side effects wait for ``settled`` instead."""
        return self._settled.is_set()

    def poll(self) -> Dict:
        """A snapshot of everything observable about the job."""
        with self._lock:
            return {
                "job_id": self.job_id,
                "state": self._state,
                "cells": len(self.specs),
                "queue_wait_s": self.queue_wait_s,
                "run_seconds": self.run_seconds,
                "error": self.error,
                "stats": dict(self.stats),
            }

    def cancel(self) -> bool:
        """Request cancellation; ``True`` if the job will not produce
        results (it was still queued, or already cancelled)."""
        with self._lock:
            self._cancel_requested = True
            if self._state == "queued":
                self._state = "cancelled"
                self._finished.set()
                return True
            if self._state == "running":
                self._state = "cancelling"
            return self._state == "cancelled"

    def result(self, timeout: Optional[float] = None) -> List:
        """Block until the job finishes; the ordered cell results.

        Raises ``TimeoutError`` if ``timeout`` elapses first, and
        ``RuntimeError`` for a failed or cancelled job.
        """
        if not self._finished.wait(timeout):
            raise TimeoutError(f"job {self.job_id} still {self.state} after {timeout}s")
        with self._lock:
            if self._state != "done":
                raise RuntimeError(f"job {self.job_id} {self._state}: {self.error or 'no results'}")
            assert self._results is not None
            return self._results

    # -- executor-side transitions (JobRunner only) --------------------------

    def _start(self) -> bool:
        """Move queued -> running; ``False`` if the job was cancelled
        while waiting (it must not run)."""
        with self._lock:
            if self._state != "queued":
                return False
            if self._cancel_requested:
                self._state = "cancelled"
                self._finished.set()
                return False
            self._state = "running"
            self.queue_wait_s = time.monotonic() - self.submitted_at
            return True

    def _finish(
        self, results: Optional[List], error: Optional[BaseException], run_seconds: float
    ) -> None:
        with self._lock:
            self.run_seconds = run_seconds
            if self._cancel_requested:
                self._state = "cancelled"
            elif error is not None:
                self._state = "failed"
                self.error = repr(error)
            else:
                self._state = "done"
                self._results = results
            self._finished.set()


class JobRunner:
    """Bounded FIFO queue of sweep jobs, drained by one worker thread."""

    def __init__(self, queue_depth: int = 16):
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        self.queue_depth = queue_depth
        self._queue: deque = deque()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._thread: Optional[threading.Thread] = None
        self._shutdown = False
        self._draining = False
        self._running: Optional[JobHandle] = None

    # -- introspection (metrics) ---------------------------------------------

    def queued(self) -> int:
        with self._lock:
            return len(self._queue)

    def running(self) -> Optional[JobHandle]:
        with self._lock:
            return self._running

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        specs: Sequence,
        on_transition: Optional[Callable[[JobHandle, str], None]] = None,
        **run_kwargs,
    ) -> JobHandle:
        """Queue one sweep; returns its :class:`JobHandle` immediately.

        ``run_kwargs`` are forwarded verbatim to
        :func:`repro.runner.pool.run_cells` (``jobs=``,
        ``result_cache=``, ``telemetry=``, ...).  ``on_transition`` is
        called from the executor thread as ``(handle, state)`` when the
        job starts and when it finishes — the service uses it to emit
        ``sweep_start`` / ``sweep_finish`` telemetry.

        Raises :class:`JobQueueFull` when ``queue_depth`` jobs are
        already waiting (the running job does not count against the
        bound).
        """
        handle = JobHandle(specs, run_kwargs)
        handle.on_transition = on_transition
        with self._lock:
            if self._shutdown:
                raise RuntimeError("JobRunner is shut down")
            if self._draining:
                raise RuntimeError("JobRunner is draining")
            if len(self._queue) >= self.queue_depth:
                raise JobQueueFull(f"work queue is full ({self.queue_depth} sweeps waiting)")
            self._queue.append(handle)
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._drain, name="repro-job-runner", daemon=True
                )
                self._thread.start()
            self._wake.notify()
        return handle

    # -- executor ------------------------------------------------------------

    def _drain(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._shutdown and not self._draining:
                    self._wake.wait()
                if self._draining:
                    # Park without touching the queue: queued handles
                    # stay queued (their journal records make them the
                    # next process's work, not this one's casualties).
                    return
                if self._shutdown and not self._queue:
                    return
                handle = self._queue.popleft()
                self._running = handle
            try:
                self._run_one(handle)
            finally:
                with self._lock:
                    self._running = None

    @staticmethod
    def _notify(handle: JobHandle, state: str) -> None:
        callback = getattr(handle, "on_transition", None)
        if callback is None:
            return
        try:
            callback(handle, state)
        except Exception:
            pass  # observers are advisory, never fatal

    def _run_one(self, handle: JobHandle) -> None:
        if not handle._start():
            self._notify(handle, handle.state)
            handle._settled.set()
            return
        self._notify(handle, "running")
        started = time.perf_counter()
        results: Optional[List] = None
        error: Optional[BaseException] = None
        try:
            results = run_cells(handle.specs, stats_sink=handle.stats, **handle.run_kwargs)
        except BaseException as exc:  # noqa: BLE001 — job isolation boundary
            error = exc
        handle._finish(results, error, time.perf_counter() - started)
        self._notify(handle, handle.state)
        handle._settled.set()

    # -- lifecycle -----------------------------------------------------------

    def drain(self) -> List[JobHandle]:
        """Stop *starting* work: the running job finishes normally, the
        queued handles are left queued and returned (still ``queued``
        state — they are the next process's inheritance, not cancelled
        casualties).  ``submit`` refuses new work from here on."""
        with self._lock:
            self._draining = True
            queued = list(self._queue)
            self._wake.notify_all()
        return queued

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until the executor thread has parked after
        :meth:`drain` (or :meth:`shutdown`); ``True`` once it has."""
        with self._lock:
            thread = self._thread
        if thread is None:
            return True
        thread.join(timeout)
        return not thread.is_alive()

    def shutdown(self, wait: bool = True, cancel_queued: bool = True) -> None:
        """Stop accepting work; optionally cancel what is still queued
        and join the executor thread."""
        with self._lock:
            self._shutdown = True
            if cancel_queued:
                queued = list(self._queue)
                self._queue.clear()
            else:
                queued = []
            thread = self._thread
            self._wake.notify_all()
        for handle in queued:
            handle.cancel()
            self._notify(handle, handle.state)
            handle._settled.set()
        if wait and thread is not None:
            thread.join()
