"""The client's retry policy: backoff, jitter, retry_after_s, opt-out,
and the byte-offset stream resume.

The unit tests script ``_request_once`` and record the injected
``sleep`` calls, so every delay the policy computes is asserted
exactly (the rng stub pins the jitter factor at 1.0).  The stream
tests run a real in-thread server under ``REPRO_CHAOS=
drop_stream_after`` and assert the resumed stream delivers every event
exactly once.
"""

import pytest

from repro.leakage.sweep import LeakageCellSpec
from repro.runner.result_cache import ResultCache
from repro.service.app import serve_in_thread
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.store import DiskResultStore
from repro.service.sweeps import ServiceConfig, SweepService


class FixedRandom:
    """random() pinned to 0.5: jitter factor (0.5 + 0.5) == 1.0."""

    def random(self):
        return 0.5


class ScriptedClient(ServiceClient):
    """A client whose wire layer plays back a scripted sequence."""

    def __init__(self, script, **kwargs):
        self.sleeps = []
        kwargs.setdefault("rng", FixedRandom())
        kwargs.setdefault("sleep", self.sleeps.append)
        super().__init__("127.0.0.1", 1, **kwargs)
        self.script = list(script)
        self.calls = 0

    def _request_once(self, method, path, body=None):
        self.calls += 1
        action = self.script.pop(0)
        if isinstance(action, BaseException):
            raise action
        return action


def refusal(status, code, **extra):
    return ServiceClientError(status, {"error": {"code": code, **extra}})


class TestRetryPolicy:
    def test_429_retried_with_server_hint(self):
        client = ScriptedClient([refusal(429, "rate_limited", retry_after_s=0.25),
                                 {"ok": True}])
        assert client.submit_payload({"x": 1}) == {"ok": True}
        assert client.calls == 2
        assert client.sleeps == [0.25]  # the hint, not the computed backoff

    def test_503_draining_retried_for_posts(self):
        client = ScriptedClient([refusal(503, "draining", retry_after_s=0.5),
                                 {"id": "abc"}])
        assert client.submit_payload({"x": 1}) == {"id": "abc"}
        assert client.sleeps == [0.5]

    def test_connection_error_retried_for_gets_with_backoff(self):
        client = ScriptedClient([ConnectionResetError(), ConnectionResetError(),
                                 {"ok": True}],
                                retries=2, backoff_s=0.1)
        assert client.healthz() == {"ok": True}
        assert client.calls == 3
        assert client.sleeps == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_backoff_is_capped(self):
        client = ScriptedClient([ConnectionResetError()] * 3 + [{"ok": True}],
                                retries=3, backoff_s=1.0, backoff_cap_s=1.5)
        assert client.healthz() == {"ok": True}
        assert client.sleeps == [pytest.approx(1.0), pytest.approx(1.5),
                                 pytest.approx(1.5)]

    def test_connection_error_not_retried_for_posts(self):
        client = ScriptedClient([ConnectionResetError(), {"never": "reached"}])
        with pytest.raises(ConnectionResetError):
            client.submit_payload({"x": 1})
        assert client.calls == 1 and client.sleeps == []

    def test_non_retryable_status_raises_immediately(self):
        client = ScriptedClient([refusal(400, "invalid_spec"), {"never": "reached"}])
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit_payload({"x": 1})
        assert excinfo.value.status == 400
        assert client.calls == 1 and client.sleeps == []

    def test_retries_zero_opts_out(self):
        client = ScriptedClient([refusal(429, "rate_limited", retry_after_s=9.0)],
                                retries=0)
        with pytest.raises(ServiceClientError):
            client.healthz()
        assert client.calls == 1 and client.sleeps == []

    def test_budget_exhaustion_raises_the_last_error(self):
        client = ScriptedClient([refusal(429, "rate_limited"),
                                 refusal(429, "rate_limited")],
                                retries=1, backoff_s=0.05)
        with pytest.raises(ServiceClientError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 429
        assert client.calls == 2 and len(client.sleeps) == 1

    def test_jitter_uses_injected_rng(self):
        class LowRandom:
            def random(self):
                return 0.0  # factor 0.5

        client = ScriptedClient([ConnectionResetError(), {"ok": True}],
                                retries=1, backoff_s=0.2, rng=LowRandom())
        client.healthz()
        assert client.sleeps == [pytest.approx(0.1)]

    def test_malformed_retry_after_falls_back_to_backoff(self):
        client = ScriptedClient([refusal(429, "rate_limited", retry_after_s="soon"),
                                 {"ok": True}], backoff_s=0.1)
        assert client.healthz() == {"ok": True}
        assert client.sleeps == [pytest.approx(0.1)]


# -- stream resume over a real server ----------------------------------------


def quick_grid(n=2, seed0=700):
    return [
        LeakageCellSpec(channel="eq7", scheme="random_fill", window=(1, 0),
                        trials=40, seed=seed0 + i, curve_points=(1, 2),
                        curve_repeats=5)
        for i in range(n)
    ]


@pytest.fixture
def server(tmp_path):
    config = ServiceConfig(host="127.0.0.1", port=0, jobs=1, queue_depth=4,
                           rate=1000.0, burst=1000.0,
                           spool_dir=str(tmp_path / "spool"))
    store = DiskResultStore(ResultCache(disk_dir=str(tmp_path / "results")))
    service = SweepService(config, store=store)
    handle = serve_in_thread(config, service=service)
    yield handle
    handle.stop()


class TestStreamResume:
    def finished_sweep(self, server):
        client = ServiceClient(server.host, server.port, client_id="stream")
        accepted = client.submit(quick_grid())
        client.wait(accepted["id"], timeout=120)
        return client, accepted["id"]

    def test_resume_delivers_every_event_exactly_once(self, server, monkeypatch):
        client, sweep_id = self.finished_sweep(server)
        baseline = list(client.stream_events(sweep_id, follow=False))
        assert len(baseline) > 2
        monkeypatch.setenv("REPRO_CHAOS", "drop_stream_after=2")
        sleeps = []
        client.sleep = sleeps.append
        streamed = list(client.stream_events(sweep_id, follow=False))
        assert streamed == baseline  # nothing lost, nothing duplicated
        assert sleeps  # at least one drop actually happened

    def test_stream_without_retries_surfaces_the_drop(self, server, monkeypatch):
        client, sweep_id = self.finished_sweep(server)
        monkeypatch.setenv("REPRO_CHAOS", "drop_stream_after=2")
        fragile = ServiceClient(server.host, server.port, client_id="fragile",
                                retries=0)
        with pytest.raises(Exception):
            list(fragile.stream_events(sweep_id, follow=False))
