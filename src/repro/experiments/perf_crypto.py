"""Cryptographic-program performance: Figures 6 and 7.

Workload: "OpenSSL's AES encryption that takes a 32 KB random input and
does a cipher block chaining (CBC) mode of encryption", with the five
encryption tables protected and a random fill window of ``[-16, +15]``
(covers any 1-KB table from any lookup).  IPC is normalized to the
demand-fetch baseline with the same cache size and associativity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.window import RandomFillWindow
from repro.cpu.timing import SimResult, TimingModel
from repro.cpu.trace import Trace
from repro.crypto.traced_aes import AesMemoryLayout, TracedAES128
from repro.experiments.config import BASELINE_CONFIG, SimulatorConfig
from repro.experiments.schemes import build_scheme
from repro.runner.cells import CellSpec
from repro.runner.pool import run_cells
from repro.workloads.cache import TRACE_CACHE

#: Figure 6 x-axis: cache sizes and associativities
FIGURE6_SIZES = (8 * 1024, 16 * 1024, 32 * 1024)
FIGURE6_ASSOCS = (1, 2, 4)
FIGURE6_SCHEMES = ("baseline", "plcache_preload", "disable_cache",
                   "random_fill")
#: the paper's window for Figure 6: [i-16, i+15]
FIGURE6_WINDOW = RandomFillWindow(16, 15)


def make_cbc_trace(message_kb: int = 32, seed: int = 0,
                   layout: AesMemoryLayout = AesMemoryLayout(),
                   decrypt_too: bool = False):
    """The Figure 6 workload trace: AES-CBC over random input.

    With ``decrypt_too`` the trace alternates encryption and decryption
    (the Figure 8 stress workload, touching all ten tables).
    """
    rng = random.Random(seed)
    key = bytes(rng.randrange(256) for _ in range(16))
    iv = bytes(rng.randrange(256) for _ in range(16))
    data = bytes(rng.randrange(256) for _ in range(message_kb * 1024))
    aes = TracedAES128(key, layout=layout)
    ciphertext, trace = aes.encrypt_cbc_traced(data, iv)
    if not decrypt_too:
        return trace
    chunks = [trace]
    for i in range(0, len(ciphertext), 16):
        block = ciphertext[i:i + 16]
        _, block_trace = aes.decrypt_block_traced(
            block, message_offset=(i * 2) % 0x8000)
        chunks.append(block_trace)
    return Trace.concat(chunks)


#: bump whenever :func:`make_cbc_trace` changes output for the same
#: arguments — it keys the trace cache.
AES_TRACE_VERSION = 1


def cached_cbc_trace(message_kb: int = 32, seed: int = 0,
                     decrypt_too: bool = False):
    """`make_cbc_trace` (default layout) through the trace cache.

    Tracing AES-CBC software costs far more than the simulation that
    consumes the trace, so sweeps that revisit the same message reuse
    one generation — across schemes in-process and across worker
    processes via the disk layer.
    """
    key = ("cbc", message_kb, seed, decrypt_too, AES_TRACE_VERSION)
    return TRACE_CACHE.get_trace(
        key, lambda: make_cbc_trace(message_kb=message_kb, seed=seed,
                                    decrypt_too=decrypt_too))


@dataclass
class CryptoPerfPoint:
    """One (scheme, cache config) measurement."""

    scheme: str
    l1_size: int
    l1_assoc: int
    window_size: int
    result: SimResult
    normalized_ipc: float = 0.0


def run_crypto_workload(scheme_name: str, config: SimulatorConfig,
                        window: Optional[RandomFillWindow] = None,
                        message_kb: int = 32, seed: int = 0,
                        trace=None) -> SimResult:
    """Run the AES-CBC workload on one scheme; returns the sim result."""
    layout = AesMemoryLayout()
    protected = layout.enc_regions()
    scheme = build_scheme(scheme_name, config, seed=seed,
                          protected=protected, window=window)
    if trace is None:
        trace = cached_cbc_trace(message_kb=message_kb, seed=seed)
    start = scheme.prepare()
    timing = TimingModel(scheme.l1, issue_width=config.issue_width,
                         overlap_credit=config.overlap_credit)
    result = timing.run(trace, start_cycle=start)
    if start:
        # Charge the preload to the program's runtime.
        result.cycles += start
    return result


def figure6(sizes: Sequence[int] = FIGURE6_SIZES,
            assocs: Sequence[int] = FIGURE6_ASSOCS,
            schemes: Sequence[str] = FIGURE6_SCHEMES,
            message_kb: int = 32,
            seed: int = 0,
            config: SimulatorConfig = BASELINE_CONFIG,
            jobs: Optional[int] = None) -> List[CryptoPerfPoint]:
    """The Figure 6 sweep: normalized IPC per scheme per cache config.

    Cells fan out over the parallel runner (``jobs``/``REPRO_JOBS``);
    each (size, assoc) group carries one extra baseline cell so the
    normalization denominator exists even when ``schemes`` omits it.
    """
    specs: List[CellSpec] = []
    for size in sizes:
        for assoc in assocs:
            cfg = config.with_l1d(size, assoc)
            specs.append(CellSpec(
                kind="crypto", scheme="baseline", message_kb=message_kb,
                seed=seed, config=cfg))
            for scheme_name in schemes:
                if scheme_name == "baseline":
                    continue
                window = (FIGURE6_WINDOW.a, FIGURE6_WINDOW.b) \
                    if scheme_name == "random_fill" else None
                specs.append(CellSpec(
                    kind="crypto", scheme=scheme_name, window=window,
                    message_kb=message_kb, seed=seed, config=cfg))
    results = iter(run_cells(specs, jobs=jobs))
    points: List[CryptoPerfPoint] = []
    for size in sizes:
        for assoc in assocs:
            base = next(results)
            by_scheme = {"baseline": base}
            for scheme_name in schemes:
                if scheme_name != "baseline":
                    by_scheme[scheme_name] = next(results)
            for scheme_name in schemes:
                result = by_scheme[scheme_name]
                points.append(CryptoPerfPoint(
                    scheme=scheme_name, l1_size=size, l1_assoc=assoc,
                    window_size=(FIGURE6_WINDOW.size
                                 if scheme_name == "random_fill" else 1),
                    result=result,
                    normalized_ipc=result.ipc / base.ipc))
    return points


#: Figure 7 cache configurations: (label, scheme base, size, assoc)
FIGURE7_CONFIGS = (
    ("8KB DM", "random_fill", 8 * 1024, 1),
    ("32KB 4-way SA", "random_fill", 32 * 1024, 4),
    ("8KB newcache", "random_fill_newcache", 8 * 1024, 1),
    ("32KB Newcache", "random_fill_newcache", 32 * 1024, 1),
)


def figure7(window_sizes: Sequence[int] = (1, 2, 4, 8, 16, 32),
            configs: Sequence[Tuple[str, str, int, int]] = FIGURE7_CONFIGS,
            message_kb: int = 32, seed: int = 0,
            config: SimulatorConfig = BASELINE_CONFIG,
            jobs: Optional[int] = None,
            ) -> Dict[str, List[Tuple[int, float]]]:
    """The Figure 7 sweep: normalized IPC vs bidirectional window size.

    Window size 1 is the demand-fetch reference each curve is
    normalized to (the zeroed range registers).  Cells fan out over the
    parallel runner (``jobs``/``REPRO_JOBS``).
    """
    specs: List[CellSpec] = []
    for label, scheme_name, size, assoc in configs:
        cfg = config.with_l1d(size, assoc)
        for w in window_sizes:
            window = RandomFillWindow.bidirectional(w)
            specs.append(CellSpec(
                kind="crypto", scheme=scheme_name,
                window=(window.a, window.b), message_kb=message_kb,
                seed=seed, config=cfg))
    results = iter(run_cells(specs, jobs=jobs))
    series: Dict[str, List[Tuple[int, float]]] = {}
    for label, scheme_name, size, assoc in configs:
        base_ipc = None
        points: List[Tuple[int, float]] = []
        for w in window_sizes:
            result = next(results)
            if base_ipc is None:
                base_ipc = result.ipc
            points.append((w, result.ipc / base_ipc))
        series[label] = points
    return series
