"""Small statistics helpers used by the attack and analysis modules.

Kept dependency-light (no scipy import at module load) so the hot attack
loops can use them cheaply.
"""

from __future__ import annotations

import math
from typing import Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input (silent 0 hides bugs)."""
    if not values:
        raise ValueError("mean() of empty sequence")
    return sum(values) / len(values)


def population_variance(values: Sequence[float]) -> float:
    """Population variance (divide by N)."""
    m = mean(values)
    return sum((v - m) ** 2 for v in values) / len(values)


def sample_variance(values: Sequence[float]) -> float:
    """Unbiased sample variance (divide by N-1)."""
    if len(values) < 2:
        raise ValueError("sample_variance() needs at least two values")
    m = mean(values)
    return sum((v - m) ** 2 for v in values) / (len(values) - 1)


def welch_t(a: Sequence[float], b: Sequence[float]) -> float:
    """Welch's t statistic between two samples.

    Used by attack code to decide whether two timing populations
    (collision vs no-collision) are distinguishable.
    """
    va = sample_variance(a) / len(a)
    vb = sample_variance(b) / len(b)
    denom = math.sqrt(va + vb)
    if denom == 0.0:
        return 0.0 if mean(a) == mean(b) else math.inf
    return (mean(a) - mean(b)) / denom


def normal_quantile(p: float) -> float:
    """Quantile (inverse CDF) of the standard normal distribution.

    Acklam's rational approximation — accurate to ~1e-9, which is far
    beyond what Equation (5)'s measurement-count estimate needs.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    # Coefficients for the central and tail regions.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low, p_high = 0.02425, 1.0 - 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p > p_high:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / \
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
