"""Conventional set-associative tag store (the paper's baseline cache).

Geometry follows Table IV: configurable size/associativity, 64-byte
lines, LRU replacement by default.  Direct-mapped is associativity 1.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.cache.context import AccessContext, DEFAULT_CONTEXT
from repro.cache.replacement import FifoPolicy, LruPolicy, ReplacementPolicy
from repro.cache.tagstore import LineState, TagStore
from repro.memory.address import AddressMap


class SetAssociativeCache(TagStore):
    """Set-associative cache tag store.

    Parameters
    ----------
    size_bytes:
        Total data capacity.
    associativity:
        Ways per set (1 = direct mapped).
    line_size:
        Line size in bytes (64 in the paper).
    policy:
        Replacement policy; default LRU (Table IV).
    """

    def __init__(self, size_bytes: int, associativity: int,
                 line_size: int = 64,
                 policy: Optional[ReplacementPolicy] = None):
        if size_bytes <= 0 or size_bytes % (associativity * line_size):
            raise ValueError(
                f"size {size_bytes} not divisible into {associativity}-way "
                f"sets of {line_size}-byte lines"
            )
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.line_size = line_size
        self.capacity_lines = size_bytes // line_size
        num_sets = self.capacity_lines // associativity
        self.amap = AddressMap(line_size=line_size, num_sets=num_sets)
        # Hot-path constant: the set index is `line_addr & mask`.
        self._set_mask = num_sets - 1
        self._sets: List[List[LineState]] = [[] for _ in range(num_sets)]
        # Subclasses with their own eviction rules (e.g. NoMo's
        # partitioning) must not take the inlined victim fast path.
        self._default_evictable = (
            type(self)._evictable_indices
            is SetAssociativeCache._evictable_indices)
        self.policy = policy if policy is not None else LruPolicy()

    # -- replacement policy dispatch --------------------------------------

    @property
    def policy(self) -> ReplacementPolicy:
        return self._policy

    @policy.setter
    def policy(self, policy: ReplacementPolicy) -> None:
        """Install a policy, caching fast-path flags for LRU/FIFO.

        The baseline LRU (and FIFO) hit/fill/victim behaviour is simple
        enough to inline into ``access``/``fill`` — which are the most
        called functions in a simulation — instead of paying a virtual
        dispatch per event.  Any other policy, or a subclass with its
        own eviction filter, takes the generic path.
        """
        self._policy = policy
        cls = type(policy)
        self._lru_hits = cls.on_hit is LruPolicy.on_hit
        self._noop_hits = cls.on_hit is FifoPolicy.on_hit
        self._mru_fills = cls.on_fill in (LruPolicy.on_fill,
                                          FifoPolicy.on_fill)
        self._max_victims = self._default_evictable and \
            cls.choose_victim in (LruPolicy.choose_victim,
                                  FifoPolicy.choose_victim)

    # -- helpers ---------------------------------------------------------

    def _set_for(self, line_addr: int) -> List[LineState]:
        return self._sets[line_addr & self._set_mask]

    def _find(self, cache_set: List[LineState], line_addr: int) -> int:
        for i, line in enumerate(cache_set):
            if line.line_addr == line_addr:
                return i
        return -1

    def _evictable_indices(self, cache_set: List[LineState],
                           ctx: AccessContext) -> List[int]:
        """Indices the requester may evict.

        Locked lines (PLcache) are immune to normal replacement — that
        is what makes preload+lock a constant-time defence; only the
        owner's own *locking* accesses may displace them.
        """
        return [i for i, line in enumerate(cache_set)
                if not line.locked
                or (ctx.lock and line.owner == ctx.thread_id)]

    # -- TagStore interface ----------------------------------------------

    def probe(self, line_addr: int, ctx: AccessContext = DEFAULT_CONTEXT) -> bool:
        for line in self._sets[line_addr & self._set_mask]:
            if line.line_addr == line_addr:
                return True
        return False

    def access(self, line_addr: int, ctx: AccessContext = DEFAULT_CONTEXT) -> bool:
        cache_set = self._sets[line_addr & self._set_mask]
        # The inlined find loop (vs a _find call) matters: this is the
        # single most-called method in a simulation.
        index = -1
        for i, line in enumerate(cache_set):
            if line.line_addr == line_addr:
                index = i
                break
        if index < 0:
            return False
        if ctx.lock:
            line.locked = True
            line.owner = ctx.thread_id
        elif ctx.unlock and line.owner == ctx.thread_id:
            line.locked = False
        if self._lru_hits:
            if index:
                cache_set.insert(0, cache_set.pop(index))
        elif not self._noop_hits:
            self._policy.on_hit(cache_set, index)
        return True

    def fill(self, line_addr: int,
             ctx: AccessContext = DEFAULT_CONTEXT) -> Optional[int]:
        cache_set = self._sets[line_addr & self._set_mask]
        for line in cache_set:
            if line.line_addr == line_addr:
                return None
        evicted: Optional[int] = None
        if len(cache_set) >= self.associativity:
            if self._max_victims:
                # Inlined max(evictable): scan from the LRU end for the
                # first line the requester may displace.
                victim: Optional[int] = None
                lock = ctx.lock
                thread_id = ctx.thread_id
                for i in range(len(cache_set) - 1, -1, -1):
                    line = cache_set[i]
                    if not line.locked or (lock and line.owner == thread_id):
                        victim = i
                        break
            else:
                victim = self._policy.choose_victim(
                    cache_set, self._evictable_indices(cache_set, ctx))
            if victim is None:
                return None  # every way locked by others: fill refused
            evicted = cache_set.pop(victim).line_addr
        new_line = LineState(line_addr, owner=ctx.thread_id, domain=ctx.domain,
                             locked=ctx.lock)
        if self._mru_fills:
            cache_set.insert(0, new_line)
        else:
            self._policy.on_fill(cache_set, new_line)
        return evicted

    def invalidate(self, line_addr: int) -> bool:
        cache_set = self._set_for(line_addr)
        index = self._find(cache_set, line_addr)
        if index < 0:
            return False
        cache_set.pop(index)
        return True

    def flush(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()

    def resident_lines(self) -> Iterator[int]:
        for cache_set in self._sets:
            for line in cache_set:
                yield line.line_addr

    def line_state(self, line_addr: int) -> Optional[LineState]:
        """Expose per-line metadata (used by PLcache tests and preload)."""
        cache_set = self._set_for(line_addr)
        index = self._find(cache_set, line_addr)
        return cache_set[index] if index >= 0 else None

    def set_contents(self, set_index: int) -> List[int]:
        """Line addresses in one set, MRU-first (attack code inspects this)."""
        return [line.line_addr for line in self._sets[set_index]]
