"""Trace-driven CPU model: trace format, single-thread timing, SMT."""

from repro.cpu.decode import TraceDecode
from repro.cpu.smt import SmtThread, run_smt
from repro.cpu.timing import SimResult, TimingModel
from repro.cpu.trace import (
    MemRef,
    Trace,
    TraceRecord,
    instruction_count,
    materialize,
    validate_trace,
)

__all__ = [
    "MemRef",
    "SimResult",
    "SmtThread",
    "TimingModel",
    "Trace",
    "TraceDecode",
    "TraceRecord",
    "instruction_count",
    "materialize",
    "run_smt",
    "validate_trace",
]
