"""Tests for the synthetic workload primitives."""

import pytest

from repro.cpu.trace import validate_trace
from repro.workloads.synthetic import (
    locality_mixture,
    pointer_chase,
    streaming,
    strided,
)

BASE = 0x100_0000


class TestStreaming:
    def test_length_and_validity(self):
        trace = streaming(1000, BASE, 10000, seed=1)
        assert len(trace) == 1000
        list(validate_trace(trace))

    def test_moves_forward(self):
        trace = streaming(2000, BASE, 100000, refs_per_line=4, seed=2)
        lines = [addr // 64 for addr, _, _ in trace]
        assert lines[-1] > lines[0]
        assert all(b >= a for a, b in zip(lines, lines[1:]))

    def test_dense_prob_controls_density(self):
        dense = streaming(4000, BASE, 100000, refs_per_line=1,
                          stride_lines_max=4, dense_prob=1.0, seed=3)
        sparse = streaming(4000, BASE, 100000, refs_per_line=1,
                           stride_lines_max=4, dense_prob=0.0, seed=3)
        def span(t):
            return (t[-1][0] - t[0][0]) // 64
        assert span(sparse) > span(dense)

    def test_write_ratio(self):
        trace = streaming(5000, BASE, 10000, write_ratio=0.5, seed=4)
        writes = sum(w for _, _, w in trace)
        assert 2000 < writes < 3000

    def test_deterministic(self):
        assert streaming(500, BASE, 1000, seed=7) == \
            streaming(500, BASE, 1000, seed=7)

    def test_validation(self):
        with pytest.raises(ValueError):
            streaming(0, BASE, 100)
        with pytest.raises(ValueError):
            streaming(10, BASE, 2, stride_lines_max=4)
        with pytest.raises(ValueError):
            streaming(10, BASE, 100, dense_prob=1.5)


class TestLocalityMixture:
    def test_length_and_validity(self):
        trace = locality_mixture(1000, BASE, 1024, 64, 0.5, 0.2, 4, seed=1)
        assert len(trace) == 1000
        list(validate_trace(trace))

    def test_hot_set_concentration(self):
        from collections import Counter
        trace = locality_mixture(8000, BASE, 4096, 32, 0.9, 0.0, 1,
                                 refs_per_line=1, seed=2)
        counts = Counter((addr - BASE) // 64 for addr, _, _ in trace)
        top32 = sum(c for _, c in counts.most_common(32))
        assert top32 > 0.8 * len(trace)

    def test_stays_in_working_set(self):
        trace = locality_mixture(2000, BASE, 256, 16, 0.3, 0.3, 8, seed=3)
        for addr, _, _ in trace:
            assert 0 <= (addr - BASE) // 64 < 256

    def test_validation(self):
        with pytest.raises(ValueError):
            locality_mixture(0, BASE, 100, 10, 0.1, 0.1, 1)
        with pytest.raises(ValueError):
            locality_mixture(10, BASE, 100, 10, 0.8, 0.3, 1)  # probs > 1
        with pytest.raises(ValueError):
            locality_mixture(10, BASE, 100, 200, 0.1, 0.1, 1)  # hot > ws


class TestStrided:
    def test_stride_pattern(self):
        trace = strided(100, BASE, 10000, stride_lines=4, refs_per_line=1,
                        write_ratio=0.0, seed=1)
        lines = [(addr - BASE) // 64 for addr, _, _ in trace]
        deltas = {b - a for a, b in zip(lines, lines[1:])}
        assert deltas == {4}

    def test_validation(self):
        with pytest.raises(ValueError):
            strided(0, BASE, 100, 2)
        with pytest.raises(ValueError):
            strided(10, BASE, 100, 0)


class TestPointerChase:
    def test_visits_whole_cycle(self):
        ws = 64
        trace = pointer_chase(ws, BASE, ws, seed=1)
        lines = {(addr - BASE) // 64 for addr, _, _ in trace}
        assert len(lines) == ws  # a full permutation cycle

    def test_no_spatial_pattern(self):
        trace = pointer_chase(500, BASE, 256, seed=2)
        lines = [(addr - BASE) // 64 for addr, _, _ in trace]
        sequential = sum(1 for a, b in zip(lines, lines[1:]) if b == a + 1)
        assert sequential < 25

    def test_validation(self):
        with pytest.raises(ValueError):
            pointer_chase(0, BASE, 10)
        with pytest.raises(ValueError):
            pointer_chase(10, BASE, 1)
