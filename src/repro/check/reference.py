"""Deliberately naive reference interpreter for the differential oracle.

This module re-implements the simulated machine — L1 tag store + MSHRs
+ fill queue, L2, open-page DRAM, the Figure 4 random-fill draw, and
the MLP timing arithmetic — as straight-line dict/list code with *no*
sharing of derived constants with the fast path.  Every mask, capacity
and latency is recomputed here from the specification-level objects
(geometry, :class:`~repro.core.window.RandomFillWindow`, the frozen
DRAM config), so a fast-path constant that drifts from the spec (a
stale set mask, a corrupted window register, a mis-specialized policy
kind) shows up as a state divergence instead of being silently
mirrored.

The reference is cloned from a live :class:`TimingModel` by
:meth:`ReferenceModel.capture` and then driven over the same decoded
access columns by :mod:`repro.check.oracle`, which diffs the two
machines at every sampled boundary.  Capture returns ``None`` for
configurations the reference does not model (non-LRU stores, locked
lines, exotic policies); those runs still get the invariant sanitizer,
just not the oracle.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cache.mshr import RequestType
from repro.cpu.timing import CHARGED_PRUNE_THRESHOLD

#: Reference-side mirror of ``MissQueue.NEVER``.
_NEVER = 1 << 62


def _clone_rng(rng):
    """Clone a HardwareRng so reference draws replay the real stream."""
    from repro.util.rng import HardwareRng

    clone = HardwareRng(0, width=rng.width, buffer_size=rng._buffer_size)
    clone._rng.setstate(rng._rng.getstate())
    clone._buffer = list(rng._buffer)
    return clone


class ReferenceModel:
    """Dict-based shadow machine advanced in lockstep with the real one."""

    #: Policy kinds (mirrors the fused kernel's specialization, but
    #: derived from the *window spec*, not from ``engine._params``).
    DEMAND = 0
    RF_POW2 = 1
    RF_GENERIC = 2

    @classmethod
    def capture(cls, model, ctx) -> Optional["ReferenceModel"]:
        """Snapshot ``model`` into a reference machine, or None.

        The caller guarantees fused-path eligibility; this narrows
        further to the configurations the reference interprets: stock
        LRU set-associative L1 and L2, stock DRAM, a demand-fetch or
        random-fill policy, a hardware RNG, and no locked lines.
        """
        from repro.cache.controller import DemandFetchPolicy
        from repro.cache.l2 import L2Cache
        from repro.cache.replacement import LruPolicy
        from repro.cache.set_associative import SetAssociativeCache
        from repro.core.policy import RandomFillPolicy
        from repro.memory.dram import DramModel
        from repro.util.rng import HardwareRng

        l1 = model.l1
        l2 = l1.next_level
        policy = l1._policy
        if type(policy) not in (DemandFetchPolicy, RandomFillPolicy):
            return None
        if type(l2) is not L2Cache or type(l2.dram) is not DramModel:
            return None
        for store in (l1.tag_store, l2.tag_store):
            if type(store) is not SetAssociativeCache:
                return None
            if type(store.policy) is not LruPolicy:
                return None
            if any(ls.locked for cache_set in store._sets for ls in cache_set):
                return None

        ref = cls()
        # -- timing constants (spec level) ---------------------------------
        ref.hit = l1.hit_latency
        ref.mlp = model.mlp
        ref.credit = model.overlap_credit
        # -- L1 geometry: recomputed from sizes, not from _set_mask --------
        store = l1.tag_store
        ref.l1_assoc = store.associativity
        num_sets = store.size_bytes // (store.line_size * store.associativity)
        ref.l1_mask = num_sets - 1
        ref.l1_sets = [[ls.line_addr for ls in s] for s in store._sets]
        # -- MSHR / fill queue ---------------------------------------------
        ref.mq_capacity = l1.miss_queue.capacity
        # Spec rule (Table III setup): one MSHR is reserved for demand
        # misses whenever there is more than one.
        ref.fill_reserve = 1 if ref.mq_capacity > 1 else 0
        ref.fq_capacity = l1.fill_queue_capacity
        ref.mshr: Dict[int, list] = {
            line: [entry.complete_at, entry.request_type]
            for line, entry in l1.miss_queue._entries.items()
        }
        ref.fill_queue: List[int] = [line for line, _ctx in l1.fill_queue]
        # -- L2 -------------------------------------------------------------
        l2_store = l2.tag_store
        ref.l2_hit = l2.hit_latency
        ref.l2_assoc = l2_store.associativity
        l2_sets = l2_store.size_bytes // (l2_store.line_size
                                          * l2_store.associativity)
        ref.l2_mask = l2_sets - 1
        ref.l2_sets = [[ls.line_addr for ls in s] for s in l2_store._sets]
        # -- DRAM ------------------------------------------------------------
        cfg = l2.dram.config
        ref.lines_per_row = cfg.row_size_bytes // cfg.line_size
        ref.num_banks = cfg.num_banks
        ref.row_hit_latency = (cfg.controller_overhead + cfg.t_cas
                               + cfg.t_burst)
        ref.row_miss_latency = (cfg.controller_overhead + cfg.t_rp
                                + cfg.t_rcd + cfg.t_cas + cfg.t_burst)
        ref.hit_busy = cfg.t_burst
        ref.miss_busy = cfg.t_rp + cfg.t_rcd + cfg.t_burst
        ref.open_row = dict(l2.dram._open_row)
        ref.bank_free_at = dict(l2.dram._bank_free_at)
        # -- fill policy (from the window spec) ------------------------------
        ref.window_a = ref.window_b = 0
        ref.rng = None
        ref.checker = None
        if type(policy) is DemandFetchPolicy:
            ref.kind = cls.DEMAND
        else:
            engine = policy.engine
            if not isinstance(engine._rng, HardwareRng):
                return None
            window = engine.window_for(ctx.thread_id)
            if window.disabled:
                ref.kind = cls.DEMAND
            else:
                ref.kind = cls.RF_POW2 if window.is_power_of_two \
                    else cls.RF_GENERIC
                ref.window_a = window.a
                ref.window_b = window.b
                ref.win_mask = window.size - 1
                ref.win_size = window.size
                ref.rng = _clone_rng(engine._rng)
        # -- run state -------------------------------------------------------
        ref.now = 0
        ref.charged: Dict[int, int] = {}
        ref.counters = {
            "l1_accesses": 0, "l1_hits": 0, "l1_demand_misses": 0,
            "l1_mshr_merges": 0, "l1_fills": 0, "l1_evictions": 0,
            "l1_random_fill_issued": 0, "l1_random_fill_dropped": 0,
            "l1_next_level_requests": 0,
            "l2_accesses": 0, "l2_hits": 0, "l2_demand_misses": 0,
            "l2_fills": 0, "l2_evictions": 0, "l2_next_level_requests": 0,
            "dram_lines": 0, "dram_row_hits": 0, "dram_row_misses": 0,
        }
        return ref

    # -- machine components (all deliberately naive) -----------------------

    def _draw_offset(self) -> int:
        if self.kind == self.RF_POW2:
            offset = (self.rng.draw() & self.win_mask) - self.window_a
        else:
            offset = self.rng.draw_below(self.win_size) - self.window_a
        if self.checker is not None and self.kind == self.RF_POW2:
            # The fused kernel draws straight from the RNG buffer,
            # bypassing the engine wrapper the checker installs — so
            # the reference feeds the uniformity histogram for it.
            # Generic draws go through the wrapped engine and would be
            # double-counted here.
            self.checker.note_offset(offset, self.window_a, self.window_b)
        return offset

    def _dram_access(self, line: int, now: int) -> int:
        c = self.counters
        row = line // self.lines_per_row
        bank = row % self.num_banks
        start = self.bank_free_at.get(bank, 0)
        if now > start:
            start = now
        if self.open_row.get(bank) == row:
            latency = self.row_hit_latency
            busy = self.hit_busy
            c["dram_row_hits"] += 1
        else:
            latency = self.row_miss_latency
            busy = self.miss_busy
            c["dram_row_misses"] += 1
            self.open_row[bank] = row
        self.bank_free_at[bank] = start + busy
        c["dram_lines"] += 1
        return start + latency

    def _l2_access(self, line: int, now: int) -> int:
        c = self.counters
        c["l2_accesses"] += 1
        cache_set = self.l2_sets[line & self.l2_mask]
        if line in cache_set:
            c["l2_hits"] += 1
            cache_set.remove(line)
            cache_set.insert(0, line)
            return now + self.l2_hit
        c["l2_demand_misses"] += 1
        c["l2_next_level_requests"] += 1
        done = self._dram_access(line, now + self.l2_hit)
        c["l2_fills"] += 1
        if len(cache_set) >= self.l2_assoc:
            cache_set.pop()
            c["l2_evictions"] += 1
        cache_set.insert(0, line)
        return done

    def _install_l1(self, line: int) -> None:
        c = self.counters
        c["l1_fills"] += 1
        cache_set = self.l1_sets[line & self.l1_mask]
        if line in cache_set:
            return
        if len(cache_set) >= self.l1_assoc:
            cache_set.pop()
            c["l1_evictions"] += 1
        cache_set.insert(0, line)

    def _next_completion(self) -> int:
        if not self.mshr:
            return _NEVER
        return min(entry[0] for entry in self.mshr.values())

    def _drain(self, now: int) -> int:
        """Retire completed MSHR entries; NOFILL entries never install."""
        done = [(line, entry) for line, entry in self.mshr.items()
                if entry[0] <= now]
        done.sort(key=lambda item: item[1][0])
        for line, entry in done:
            del self.mshr[line]
            if entry[1] is not RequestType.NOFILL:
                self._install_l1(line)
        return len(done)

    def _issue_fills(self, now: int) -> None:
        c = self.counters
        limit = self.mq_capacity - self.fill_reserve
        queue = self.fill_queue
        while queue:
            line = queue[0]
            if line in self.l1_sets[line & self.l1_mask]:
                queue.pop(0)
                c["l1_random_fill_dropped"] += 1
                continue
            entry = self.mshr.get(line)
            if entry is not None:
                queue.pop(0)
                if entry[1] is RequestType.NOFILL:
                    entry[1] = RequestType.RANDOM_FILL
                    c["l1_random_fill_issued"] += 1
                else:
                    c["l1_random_fill_dropped"] += 1
                continue
            if len(self.mshr) >= limit:
                break
            queue.pop(0)
            complete_at = self._l2_access(line, now)
            c["l1_next_level_requests"] += 1
            c["l1_random_fill_issued"] += 1
            self.mshr[line] = [complete_at, RequestType.RANDOM_FILL]

    def _enqueue_fill(self, line: int) -> None:
        c = self.counters
        if line < 0:
            c["l1_random_fill_dropped"] += 1
        elif len(self.fill_queue) >= self.fq_capacity:
            c["l1_random_fill_dropped"] += 1
        else:
            self.fill_queue.append(line)

    # -- the interpreter loop ----------------------------------------------

    def run_chunk(self, lines_l, steps_l, writes_l) -> None:
        """Advance the reference over one chunk of decoded accesses.

        Mirrors the semantics of ``L1Controller.access_line`` plus the
        timing loop of ``TimingModel`` (writes carry no behavioural
        difference in this configuration, so the write column is
        accepted for symmetry but unused).
        """
        c = self.counters
        hit_cost = self.hit
        mlp = self.mlp
        credit = self.credit
        charged = self.charged
        now = self.now
        for line, step in zip(lines_l, steps_l):
            c["l1_accesses"] += 1
            now += step
            if self.mshr and now >= self._next_completion():
                self._drain(now)
            cache_set = self.l1_sets[line & self.l1_mask]
            if line in cache_set:
                c["l1_hits"] += 1
                cache_set.remove(line)
                cache_set.insert(0, line)
                if self.fill_queue:
                    self._issue_fills(now)
                now += hit_cost
                continue
            entry = self.mshr.get(line)
            if entry is None and self.fill_queue:
                # Queued fills are older than this miss; one of them
                # may target this very line, turning it into a merge.
                self._issue_fills(now)
                entry = self.mshr.get(line)
            if entry is not None:
                c["l1_mshr_merges"] += 1
                completion = entry[0]
                if completion < now:
                    completion = now
                if charged.get(line) == completion:
                    now += hit_cost
                else:
                    charged[line] = completion
                    now += hit_cost
                    remaining = completion - now - credit
                    if remaining > 0:
                        now += (remaining + mlp - 1) // mlp
                if len(charged) >= CHARGED_PRUNE_THRESHOLD:
                    charged = self.charged = {
                        ln: ready for ln, ready in charged.items()
                        if ready > now
                    }
                continue
            stall = 0
            access_now = now
            if len(self.mshr) >= self.mq_capacity:
                stall = self._next_completion() - now
                if stall < 0:
                    stall = 0
                access_now = now + stall
                self._drain(access_now)
                if line in cache_set:
                    # The drained line was the one we wanted; only the
                    # hit is charged (the stall goes unused).
                    c["l1_hits"] += 1
                    cache_set.remove(line)
                    cache_set.insert(0, line)
                    now += hit_cost
                    continue
            c["l1_demand_misses"] += 1
            c["l1_next_level_requests"] += 1
            if self.kind == self.DEMAND:
                complete_at = self._l2_access(line, access_now)
                self.mshr[line] = [complete_at, RequestType.NORMAL]
                if self.fill_queue:
                    self._issue_fills(access_now)
            else:
                # Section IV-B: the demand miss forwards without
                # allocating (NOFILL) and one random line from the
                # window [i-a, i+b] is requested instead.
                complete_at = self._l2_access(line, access_now)
                self.mshr[line] = [complete_at, RequestType.NOFILL]
                fill_line = line + self._draw_offset()
                if self.fill_queue:
                    # Parked requests are older; preserve FIFO order.
                    self._enqueue_fill(fill_line)
                    self._issue_fills(access_now)
                elif fill_line < 0:
                    c["l1_random_fill_dropped"] += 1
                else:
                    # Single-request issue on an empty queue (probe /
                    # merge-upgrade / demand-reserve, no queue-capacity
                    # check — the request never enters the queue unless
                    # it must park behind the MSHR reserve).
                    if fill_line in self.l1_sets[fill_line & self.l1_mask]:
                        c["l1_random_fill_dropped"] += 1
                    else:
                        entry = self.mshr.get(fill_line)
                        if entry is not None:
                            if entry[1] is RequestType.NOFILL:
                                entry[1] = RequestType.RANDOM_FILL
                                c["l1_random_fill_issued"] += 1
                            else:
                                c["l1_random_fill_dropped"] += 1
                        elif (len(self.mshr)
                              >= self.mq_capacity - self.fill_reserve):
                            self.fill_queue.append(fill_line)
                        else:
                            fill_at = self._l2_access(fill_line, access_now)
                            c["l1_next_level_requests"] += 1
                            c["l1_random_fill_issued"] += 1
                            self.mshr[fill_line] = [fill_at,
                                                    RequestType.RANDOM_FILL]
            charged[line] = complete_at
            now += hit_cost + stall
            remaining = complete_at - now - credit
            if remaining > 0:
                now += (remaining + mlp - 1) // mlp
            if len(charged) >= CHARGED_PRUNE_THRESHOLD:
                charged = self.charged = {
                    ln: ready for ln, ready in charged.items() if ready > now
                }
        self.now = now

    def settle(self) -> None:
        """Mirror ``L1Controller.settle(None)`` end-of-run retirement."""
        c = self.counters
        while self.fill_queue or self.mshr:
            progressed = False
            if self.mshr:
                horizon = self._next_completion()
                if horizon < 0:
                    horizon = 0
                progressed |= self._drain(horizon) > 0
            if self.fill_queue and len(self.mshr) < self.mq_capacity:
                before = len(self.fill_queue)
                self._issue_fills(0)
                progressed |= len(self.fill_queue) != before
            if not progressed:
                c["l1_random_fill_dropped"] += len(self.fill_queue)
                self.fill_queue.clear()
                self.mshr.clear()
                break
