"""Property test: columnar and tuple-list traces simulate identically.

The columnar :class:`Trace` takes the pre-decoded (and, for eligible
schemes, fused) fast path through ``TimingModel.run`` while a plain
record list takes the original per-record loop — so hypothesis-random
traces through both representations pin the fast paths to the reference
semantics across demand fetch, random fill (the fused kernel) and a
policy-bearing scheme (the generic pre-decoded path).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.window import RandomFillWindow
from repro.cpu.timing import TimingModel
from repro.cpu.trace import Trace
from repro.experiments.config import BASELINE_CONFIG
from repro.experiments.schemes import build_scheme

# Addresses span more lines than L1 capacity so traces exercise misses,
# merges and (for random fill) out-of-window fills; gaps > 1 exercise
# the issue front-end backlog arithmetic.
RECORDS = st.lists(
    st.tuples(st.integers(min_value=0, max_value=1 << 22),
              st.integers(min_value=1, max_value=9),
              st.integers(min_value=0, max_value=1)),
    min_size=0, max_size=300)

SCHEMES = ("baseline", "random_fill", "tagged_prefetch")


def simulate(scheme_name, trace, seed):
    scheme = build_scheme(scheme_name, BASELINE_CONFIG, seed=seed)
    if scheme.os is not None:
        window = RandomFillWindow(4, 3)
        scheme.os.set_rr(window.a, window.b)
    timing = TimingModel(scheme.l1,
                         issue_width=BASELINE_CONFIG.issue_width,
                         overlap_credit=BASELINE_CONFIG.overlap_credit)
    return timing.run(trace)


@settings(max_examples=30, deadline=None)
@given(records=RECORDS, seed=st.integers(min_value=0, max_value=2**31))
def test_columnar_matches_tuple_list(records, seed):
    columnar = Trace.from_records(records)
    for scheme_name in SCHEMES:
        reference = simulate(scheme_name, records, seed)
        fast = simulate(scheme_name, columnar, seed)
        assert fast == reference, scheme_name


@settings(max_examples=10, deadline=None)
@given(records=RECORDS, seed=st.integers(min_value=0, max_value=2**31))
def test_columnar_slice_matches_list_tail(records, seed):
    """Measured-half slicing (warm runs) must also be representation-
    independent: a zero-copy columnar view equals the list tail."""
    split = len(records) // 2
    columnar = Trace.from_records(records)
    for scheme_name in ("baseline", "random_fill"):
        reference = simulate(scheme_name, records[split:], seed)
        fast = simulate(scheme_name, columnar[split:], seed)
        assert fast == reference, scheme_name
