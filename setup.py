"""Legacy setup shim: enables `python setup.py develop` in offline
environments where pip's PEP 660 editable path (which needs the `wheel`
package) is unavailable. All metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
