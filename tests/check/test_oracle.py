"""Differential-oracle tests: bit-identity when clean, detection when not.

The two halves of the tentpole contract:

* a checked run returns the *same* ``SimResult`` as an unchecked run of
  the same trace (so checked mode revalidates the actual figures), and
* a seeded fast-path mutation — the class of bug the oracle exists to
  catch — raises :exc:`CheckViolation` instead of silently corrupting
  results.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import CheckViolation, checked
from repro.cpu.timing import TimingModel
from repro.cpu.trace import Trace
from repro.experiments.config import BASELINE_CONFIG
from repro.experiments.schemes import build_scheme

#: (scheme, window) grid covering the fused pow2 kernel, the generic
#: non-pow2 draw, the disabled window and the non-SA/policy schemes.
CONFIGS = (
    ("baseline", None),
    ("random_fill", (4, 3)),       # pow2 window: fused kind-2 kernel
    ("random_fill", (5, 3)),       # non-pow2: generic modulo draw
    ("random_fill", (16, 15)),
    ("newcache", None),            # invariant sweep only (no oracle)
    ("tagged_prefetch", None),
)


def _records(n, seed, span_lines=1 << 14):
    rng = random.Random(seed)
    return [(rng.randrange(span_lines) * 64, rng.randrange(1, 6),
             rng.random() < 0.3) for _ in range(n)]


def _simulate(scheme_name, window, trace, seed, mutate=None):
    scheme = build_scheme(scheme_name, BASELINE_CONFIG, seed=seed)
    if scheme.os is not None and window is not None:
        scheme.os.set_rr(*window)
    if mutate is not None:
        mutate(scheme)
    timing = TimingModel(scheme.l1, issue_width=BASELINE_CONFIG.issue_width,
                         overlap_credit=BASELINE_CONFIG.overlap_credit)
    return timing.run(trace)


class TestCleanEquivalence:
    @pytest.mark.parametrize("scheme_name,window", CONFIGS)
    def test_checked_run_is_bit_identical(self, scheme_name, window):
        trace = Trace.from_records(_records(3000, seed=11))
        unchecked = _simulate(scheme_name, window, trace, seed=5)
        with checked(rate=512) as checker:
            result = _simulate(scheme_name, window, trace, seed=5)
        assert result == unchecked, scheme_name
        assert checker.checks_run > 0
        assert checker.violations == 0

    def test_rate_does_not_change_results(self):
        """Chunk boundaries are invisible: any rate, same SimResult."""
        trace = Trace.from_records(_records(2500, seed=2))
        baseline = _simulate("random_fill", (4, 3), trace, seed=9)
        for rate in (64, 700, 10_000):
            with checked(rate=rate):
                result = _simulate("random_fill", (4, 3), trace, seed=9)
            assert result == baseline, f"rate={rate}"

    def test_tuple_list_trace_checked(self):
        """Non-Trace input takes the chunked per-record path."""
        records = _records(1500, seed=4)
        unchecked = _simulate("random_fill", (4, 3),
                              Trace.from_records(records), seed=3)
        with checked(rate=256) as checker:
            result = _simulate("random_fill", (4, 3), records, seed=3)
        assert result == unchecked
        assert checker.checks_run > 0


class TestMutationDetection:
    """Seeded fast-path bugs must raise, not corrupt results silently."""

    def test_off_by_one_window_constant(self):
        """Fused kernel draws with a+1: timing/state diverge from the
        reference, which derives its constants from the window spec."""
        trace = Trace.from_records(_records(3000, seed=11))

        def mutate(scheme):
            engine = scheme.os.engine
            a, mask, size = engine._params[0]
            engine._params[0] = (a + 1, mask, size)

        with checked(rate=512):
            with pytest.raises(CheckViolation) as excinfo:
                _simulate("random_fill", (4, 3), trace, seed=5,
                          mutate=mutate)
        assert excinfo.value.kind.startswith("oracle")
        assert excinfo.value.index is not None

    def test_corrupted_set_mask(self):
        """A drifted set-index mask misplaces lines; the reference
        recomputes its mask from the geometry, so state diverges (and
        the set-mapping invariant has the same bug covered)."""
        trace = Trace.from_records(_records(3000, seed=11))

        def mutate(scheme):
            store = scheme.l1.tag_store
            store._set_mask >>= 1

        with checked(rate=512):
            with pytest.raises(CheckViolation) as excinfo:
                _simulate("random_fill", (4, 3), trace, seed=5,
                          mutate=mutate)
        assert excinfo.value.kind.startswith("oracle") \
            or excinfo.value.kind == "set-mapping"

    def test_oversized_draw_bound(self):
        """Non-pow2 path drawing from too wide a range violates the
        Table II window-bounds invariant on the draw itself."""
        trace = Trace.from_records(_records(3000, seed=11))

        def mutate(scheme):
            engine = scheme.os.engine
            a, mask, size = engine._params[0]
            assert mask is None          # (5, 3) is not a pow2 window
            engine._params[0] = (a, mask, size + 4)

        with checked(rate=512):
            with pytest.raises(CheckViolation) as excinfo:
                _simulate("random_fill", (5, 3), trace, seed=5,
                          mutate=mutate)
        assert excinfo.value.kind in ("window-bounds", "oracle-timing",
                                      "oracle-state", "oracle-stats")

    def test_violation_counted(self):
        trace = Trace.from_records(_records(2000, seed=1))

        def mutate(scheme):
            engine = scheme.os.engine
            a, mask, size = engine._params[0]
            engine._params[0] = (a + 1, mask, size)

        with pytest.raises(CheckViolation):
            with checked(rate=256) as checker:
                _simulate("random_fill", (4, 3), trace, seed=5,
                          mutate=mutate)
        assert checker.violations >= 1


# Shared strategy: addresses span more lines than L1 capacity so traces
# exercise misses, MSHR merges and out-of-window fills; writes and
# gaps > 1 exercise the issue front-end.
RECORDS = st.lists(
    st.tuples(st.integers(min_value=0, max_value=1 << 22),
              st.integers(min_value=1, max_value=9),
              st.integers(min_value=0, max_value=1)),
    min_size=0, max_size=250)


class TestPropertyCheckedEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(records=RECORDS, seed=st.integers(min_value=0, max_value=2**31))
    def test_random_streams_all_schemes(self, records, seed):
        """Hypothesis-random streams through every scheme under checked
        mode: same results as unchecked, zero violations."""
        trace = Trace.from_records(records)
        for scheme_name, window in (("baseline", None),
                                    ("random_fill", (4, 3)),
                                    ("random_fill", (5, 3)),
                                    ("newcache", None)):
            unchecked = _simulate(scheme_name, window, trace, seed=seed)
            with checked(rate=64) as checker:
                result = _simulate(scheme_name, window, trace, seed=seed)
            assert result == unchecked, (scheme_name, window)
            assert checker.violations == 0
