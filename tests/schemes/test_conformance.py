"""Registry-driven conformance suite: every scheme earns its listing.

Parametrized over the *registry*, not a hand-written name list — a
newly registered scheme is pulled into every check here automatically
(and into the scheme-zoo CI matrix, which selects by ``-k <name>``).

Per functional scheme: the store builds and honours the TagStore
contract, leakage cells are deterministic (in-process repeats and
``--jobs 1`` vs ``--jobs 2``), checked mode sweeps the store's
structural invariants without violations, and the occupancy channel
produces a finite mutual information.  Per timing scheme: one small
cell simulates end to end (a crypto cell for schemes that require
protected regions, since only the AES workload supplies them).
"""

import math

import pytest

from repro.check import checked
from repro.core.window import RandomFillWindow
from repro.leakage.adapters import build_functional_scheme
from repro.leakage.sweep import LeakageCellSpec
from repro.runner.cells import CellSpec, run_cell
from repro.runner.pool import run_cells
from repro.runner.result_cache import ResultCache
from repro.schemes import functional_scheme_names, get_scheme, timing_scheme_names
from repro.secure.region import ProtectedRegion

FUNCTIONAL = functional_scheme_names()
TIMING = timing_scheme_names()

#: (a, b) used whenever a scheme requires a random fill window
WINDOW = (4, 3)


def _leakage_window(name):
    return WINDOW if get_scheme(name, functional=True).uses_window else None


def _timing_window(name):
    spec = get_scheme(name, timing=True)
    # Only designs with an OS window layer accept one; the random fill
    # schemes are exactly those (their controllers return a RandomFillOS).
    return WINDOW if spec.uses_window else None


def _build(name, m_lines=8):
    region = ProtectedRegion(0x10000, m_lines * 64)
    window = _leakage_window(name)
    return build_functional_scheme(
        name,
        region,
        window=RandomFillWindow(*window) if window else None,
        seed=11,
    )


def _occupancy_spec(name, seed=5, trials=80):
    return LeakageCellSpec(
        channel="occupancy",
        scheme=name,
        window=_leakage_window(name),
        trials=trials,
        seed=seed,
        curve_repeats=10,
    )


@pytest.mark.parametrize("name", FUNCTIONAL)
class TestFunctionalConformance:
    def test_store_builds_and_roundtrips(self, name):
        scheme = _build(name)
        store = scheme.tag_store
        assert store.capacity_lines > 0
        region_lines = list(scheme.region.lines)
        for line in region_lines:
            scheme.victim_access(line)
        resident = set(store.resident_lines())
        assert len(resident) <= store.capacity_lines
        # Whatever the fill strategy installed, a resident line probes
        # true and invalidates cleanly.
        for line in list(resident):
            assert store.probe(line)
            store.invalidate(line)
            assert not store.probe(line)
        assert not set(store.resident_lines())

    def test_reset_victim_clears_region_state(self, name):
        scheme = _build(name)
        for line in scheme.region.lines:
            scheme.victim_access(line)
        scheme.reset_victim()
        resident = set(scheme.tag_store.resident_lines())
        if scheme.preloaded:
            # plcache_preload re-runs its preload routine on reset.
            assert set(scheme.region.lines) <= resident
        else:
            assert not resident & scheme.victim_lines

    def test_leakage_cell_is_deterministic(self, name):
        spec = _occupancy_spec(name)
        assert spec.run() == spec.run()

    def test_jobs_invariance(self, name):
        specs = [_occupancy_spec(name, seed=s, trials=60) for s in (0, 1)]
        serial = run_cells(
            specs, jobs=1, result_cache=ResultCache(use_default_disk_dir=False)
        )
        parallel = run_cells(
            specs, jobs=2, result_cache=ResultCache(use_default_disk_dir=False)
        )
        assert serial == parallel

    def test_checked_mode_invariants_hold(self, name):
        unchecked = _occupancy_spec(name).run()
        with checked(rate=64) as checker:
            result = _occupancy_spec(name).run()
        assert checker.checks_run > 0
        assert checker.violations == 0
        assert result == unchecked

    def test_occupancy_channel_yields_finite_mi(self, name):
        result = _occupancy_spec(name).run()
        assert math.isfinite(result.mi_bits)
        assert result.mi_bits >= 0.0
        assert result.channel == "occupancy"


@pytest.mark.parametrize("name", TIMING)
class TestTimingConformance:
    def test_timing_cell_simulates(self, name):
        spec = get_scheme(name, timing=True)
        if spec.needs_protected:
            # Protected regions flow only through the crypto workload
            # (the AES layout's enc regions).
            cell = CellSpec(
                kind="crypto",
                scheme=name,
                window=_timing_window(name),
                message_kb=1,
                seed=3,
            )
        else:
            cell = CellSpec(
                kind="general",
                scheme=name,
                benchmark="astar",
                window=_timing_window(name),
                n_refs=3000,
                seed=3,
            )
        result = run_cell(cell)
        assert result.cycles > 0
        assert result.l1_accesses > 0
        assert run_cell(cell) == result
