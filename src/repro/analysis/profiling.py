"""Reference-ratio profiling of random fills: Eff(d), Equation (9).

Section VII samples a program's spatial locality by tagging each
randomly filled memory line with its offset ``d`` from the associated
demand miss, and measuring

    Eff(d) = N_referenced(d) / N_fetched(d)

— the fraction of lines fetched at offset ``d`` that are referenced
before being evicted.  Figure 9 plots this for the SPEC benchmarks with
``d`` up to ±16; programs whose Eff is flat and wide (libquantum, lbm)
benefit from random fill, programs with a narrow peak around d = 0 are
demand-fetch amenable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.cache.set_associative import SetAssociativeCache
from repro.cache.tagstore import TagStore
from repro.core.window import RandomFillWindow
from repro.cpu.trace import TraceRecord
from repro.util.rng import HardwareRng


@dataclass
class ProfileResult:
    """Per-offset fetch/reference counts and the Eff(d) ratio."""

    fetched: Dict[int, int]
    referenced: Dict[int, int]

    def eff(self, d: int) -> float:
        n = self.fetched.get(d, 0)
        if n == 0:
            return 0.0
        return self.referenced.get(d, 0) / n

    def series(self) -> "list[tuple[int, float]]":
        return [(d, self.eff(d)) for d in sorted(self.fetched)]


def profile_reference_ratio(trace: Iterable[TraceRecord],
                            window: RandomFillWindow,
                            l1_size: int = 32 * 1024,
                            l1_assoc: int = 4,
                            line_size: int = 64,
                            tag_store: Optional[TagStore] = None,
                            seed: int = 0) -> ProfileResult:
    """Run a trace through a random fill L1, tracking fill offsets.

    The cache model is functional (hit/miss only), which is all the
    reference ratio depends on.  Demand lines are not installed (random
    fill semantics); every installed line carries its offset tag until
    eviction, when its fate (referenced or not) is recorded.
    """
    if tag_store is None:
        tag_store = SetAssociativeCache(l1_size, l1_assoc, line_size)
    rng = HardwareRng(seed)
    line_bits = line_size.bit_length() - 1
    fetched: Dict[int, int] = {}
    referenced: Dict[int, int] = {}
    # line -> [offset d, referenced?]
    tags: Dict[int, list] = {}

    def retire(line: int) -> None:
        tag = tags.pop(line, None)
        if tag is not None and tag[1]:
            referenced[tag[0]] = referenced.get(tag[0], 0) + 1

    pow2 = window.is_power_of_two
    for addr, _gap, _write in trace:
        line = addr >> line_bits
        if tag_store.access(line):
            tag = tags.get(line)
            if tag is not None:
                tag[1] = True
            continue
        if window.disabled:
            evicted = tag_store.fill(line)
            if evicted is not None:
                retire(evicted)
            fetched[0] = fetched.get(0, 0) + 1
            tags[line] = [0, False]
            continue
        offset = (rng.draw_masked(window.size - 1) if pow2
                  else rng.draw_below(window.size)) - window.a
        fill_line = line + offset
        if fill_line < 0 or tag_store.probe(fill_line):
            continue
        evicted = tag_store.fill(fill_line)
        if evicted is not None:
            retire(evicted)
        fetched[offset] = fetched.get(offset, 0) + 1
        tags[fill_line] = [offset, False]

    for line in list(tags):
        retire(line)
    return ProfileResult(fetched=fetched, referenced=referenced)
