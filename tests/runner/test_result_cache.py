"""Tests for the content-addressed per-cell result cache."""

import os
import pickle

import pytest

import repro.runner.result_cache as result_cache_mod
from repro.runner.cells import CellSpec
from repro.runner.pool import last_run_stats, run_cells
from repro.runner.result_cache import (
    ResultCache,
    SIM_CODE_VERSION,
    default_result_dir,
)


class TokenSpec:
    """Minimal cacheable cell: result derived from the spec value."""

    calls = 0

    def __init__(self, value, token="tok1"):
        self.value = value
        self.token = token

    def __repr__(self):
        return f"TokenSpec(value={self.value!r})"

    def result_cache_token(self):
        return self.token

    def run(self):
        type(self).calls += 1
        return {"value": self.value, "squared": self.value ** 2}


class PlainSpec:
    """Cell without a cache token: must always recompute."""

    calls = 0

    def run(self):
        type(self).calls += 1
        return "computed"


@pytest.fixture
def cache(tmp_path):
    return ResultCache(disk_dir=str(tmp_path / "results"))


@pytest.fixture(autouse=True)
def reset_counters():
    TokenSpec.calls = 0
    PlainSpec.calls = 0


class TestFingerprint:
    def test_stable_for_equal_specs(self):
        assert ResultCache.fingerprint(TokenSpec(3)) == \
            ResultCache.fingerprint(TokenSpec(3))

    def test_sensitive_to_spec_value(self):
        assert ResultCache.fingerprint(TokenSpec(3)) != \
            ResultCache.fingerprint(TokenSpec(4))

    def test_sensitive_to_code_token(self):
        assert ResultCache.fingerprint(TokenSpec(3, token="tok1")) != \
            ResultCache.fingerprint(TokenSpec(3, token="tok2"))

    def test_sensitive_to_sim_code_version(self, monkeypatch):
        before = ResultCache.fingerprint(TokenSpec(3))
        monkeypatch.setattr(result_cache_mod, "SIM_CODE_VERSION",
                            SIM_CODE_VERSION + 1)
        assert ResultCache.fingerprint(TokenSpec(3)) != before

    def test_none_without_token_method(self):
        assert ResultCache.fingerprint(PlainSpec()) is None

    def test_cellspec_token_names_generator_versions(self):
        token = CellSpec(kind="general", benchmark="astar") \
            .result_cache_token()
        assert "gen" in token and "aes" in token

    def test_cellspec_fingerprint_covers_config(self):
        from dataclasses import replace
        spec = CellSpec(kind="general", benchmark="astar")
        tweaked = replace(spec, config=replace(spec.config, issue_width=2))
        assert ResultCache.fingerprint(spec) != \
            ResultCache.fingerprint(tweaked)


class TestLoadStore:
    def test_roundtrip(self, cache):
        fingerprint = cache.fingerprint(TokenSpec(7))
        assert cache.load(fingerprint) is None
        cache.store(fingerprint, {"squared": 49})
        assert cache.load(fingerprint) == {"squared": 49}
        assert cache.hits == 1 and cache.misses == 1

    def test_corrupt_entry_is_quarantined(self, cache):
        fingerprint = cache.fingerprint(TokenSpec(7))
        cache.store(fingerprint, "good")
        path = cache._path_for(fingerprint)
        with open(path, "wb") as fh:
            fh.write(b"not a pickle")
        assert cache.load(fingerprint) is None
        assert not os.path.exists(path)          # unlinked on first contact
        assert cache.corrupt_evicted == 1
        # The quarantined entry is now a plain (uncounted) miss.
        assert cache.load(fingerprint) is None
        assert cache.corrupt_evicted == 1

    def test_truncated_entry_is_quarantined(self, cache):
        fingerprint = cache.fingerprint(TokenSpec(9))
        cache.store(fingerprint, {"big": list(range(100))})
        path = cache._path_for(fingerprint)
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) // 2])     # interrupted write
        assert cache.load(fingerprint) is None
        assert not os.path.exists(path)
        assert cache.corrupt_evicted == 1

    def test_fingerprint_mismatch_is_quarantined(self, cache):
        a = cache.fingerprint(TokenSpec(1))
        b = cache.fingerprint(TokenSpec(2))
        cache.store(a, "result-a")
        # Simulate a collision/rename: file content says a, name says b.
        os.makedirs(cache.disk_dir, exist_ok=True)
        with open(cache._path_for(b), "wb") as fh:
            fh.write(open(cache._path_for(a), "rb").read())
        assert cache.load(b) is None
        assert not os.path.exists(cache._path_for(b))
        assert cache.corrupt_evicted == 1
        assert cache.load(a) == "result-a"       # the honest entry survives

    def test_plain_miss_not_counted_corrupt(self, cache):
        assert cache.load(cache.fingerprint(TokenSpec(1))) is None
        assert cache.corrupt_evicted == 0

    def test_unpicklable_result_counts_store_failure(self, cache):
        fingerprint = cache.fingerprint(TokenSpec(1))
        cache.store(fingerprint, lambda: None)  # locals don't pickle
        assert cache.store_failures == 1
        assert cache.load(fingerprint) is None

    def test_disabled_context(self, cache):
        fingerprint = cache.fingerprint(TokenSpec(1))
        cache.store(fingerprint, "result")
        with cache.disabled():
            assert not cache.enabled
            assert cache.load(fingerprint) is None
            cache.store(fingerprint, "ignored")
        assert cache.enabled
        assert cache.load(fingerprint) == "result"

    def test_no_disk_dir_disables(self):
        cache = ResultCache(disk_dir=None, use_default_disk_dir=False)
        assert not cache.enabled
        assert cache.load("deadbeef") is None

    def test_entries_pickle_with_fingerprint(self, cache):
        fingerprint = cache.fingerprint(TokenSpec(1))
        cache.store(fingerprint, "result")
        with open(cache._path_for(fingerprint), "rb") as fh:
            stored = pickle.load(fh)
        assert stored == (fingerprint, "result")


class TestVerify:
    def test_scan_quarantines_only_bad_entries(self, cache):
        good = cache.fingerprint(TokenSpec(1))
        bad = cache.fingerprint(TokenSpec(2))
        renamed = cache.fingerprint(TokenSpec(3))
        cache.store(good, "ok")
        cache.store(bad, "soon corrupt")
        cache.store(renamed, "wrong name")
        with open(cache._path_for(bad), "wb") as fh:
            fh.write(b"garbage")
        os.replace(cache._path_for(renamed),
                   cache._path_for("0" * len(renamed)))
        scan = cache.verify()
        assert scan == {"scanned": 3, "quarantined": 2}
        assert cache.corrupt_evicted == 2
        assert cache.load(good) == "ok"

    def test_scan_ignores_foreign_files(self, cache):
        cache.store(cache.fingerprint(TokenSpec(1)), "ok")
        with open(os.path.join(cache.disk_dir, "notes.txt"), "w") as fh:
            fh.write("not a result")
        assert cache.verify() == {"scanned": 1, "quarantined": 0}

    def test_scan_of_missing_dir(self, tmp_path):
        cache = ResultCache(disk_dir=str(tmp_path / "never-created"))
        assert cache.verify() == {"scanned": 0, "quarantined": 0}


class TestDefaultDir:
    def test_default_under_cache_root(self, monkeypatch):
        monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)
        assert default_result_dir().endswith(os.path.join(
            ".cache", "repro", "results"))

    @pytest.mark.parametrize("value", ["0", "off", "none", "disabled", " OFF "])
    def test_disabling_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_RESULT_CACHE", value)
        assert default_result_dir() is None

    def test_path_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        assert default_result_dir() == str(tmp_path)


class TestRunCellsIntegration:
    def test_second_run_is_served_from_cache(self, cache):
        specs = [TokenSpec(1), TokenSpec(2)]
        first = run_cells(specs, jobs=1, result_cache=cache)
        assert TokenSpec.calls == 2
        stats = last_run_stats()
        assert stats["result_cache_hits"] == 0
        assert stats["result_cache_misses"] == 2

        second = run_cells(specs, jobs=1, result_cache=cache)
        assert TokenSpec.calls == 2          # nothing recomputed
        assert second == first               # bit-identical
        stats = last_run_stats()
        assert stats["result_cache_hits"] == 2
        assert stats["result_cache_misses"] == 0

    def test_incremental_sweep_runs_only_new_cells(self, cache):
        run_cells([TokenSpec(1)], jobs=1, result_cache=cache)
        results = run_cells([TokenSpec(1), TokenSpec(5)], jobs=1,
                            result_cache=cache)
        assert TokenSpec.calls == 2          # only the new cell ran
        assert results == [{"value": 1, "squared": 1},
                           {"value": 5, "squared": 25}]
        stats = last_run_stats()
        assert stats["result_cache_hits"] == 1
        assert stats["result_cache_misses"] == 1

    def test_tokenless_specs_always_run(self, cache):
        specs = [PlainSpec()]
        run_cells(specs, jobs=1, result_cache=cache)
        run_cells(specs, jobs=1, result_cache=cache)
        assert PlainSpec.calls == 2
        stats = last_run_stats()
        assert stats["result_cache_hits"] == 0
        assert stats["result_cache_misses"] == 0

    def test_cache_on_off_results_identical(self, cache):
        specs = [TokenSpec(3), TokenSpec(4)]
        with cache.disabled():
            cold = run_cells(specs, jobs=1, result_cache=cache)
        warm_fill = run_cells(specs, jobs=1, result_cache=cache)
        warm_hit = run_cells(specs, jobs=1, result_cache=cache)
        assert cold == warm_fill == warm_hit

    def test_code_version_bump_orphans_entries(self, cache, monkeypatch):
        specs = [TokenSpec(1)]
        run_cells(specs, jobs=1, result_cache=cache)
        monkeypatch.setattr(result_cache_mod, "SIM_CODE_VERSION",
                            SIM_CODE_VERSION + 1)
        run_cells(specs, jobs=1, result_cache=cache)
        assert TokenSpec.calls == 2
