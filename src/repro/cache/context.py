"""Per-access context: which thread issued the access and how.

A single object travels with every memory reference through the cache
hierarchy.  It carries the information the secure cache designs key off:

* ``thread_id`` — SMT hardware thread (NoMo partitions by it, the random
  fill window registers are per-thread processor context),
* ``domain`` — trust domain (RPcache permutation tables are per-domain,
  Newcache remapping tables are per protected domain),
* ``critical`` — the access touches security-critical data (the
  disable-cache scheme bypasses the cache for these),
* ``lock`` / ``unlock`` — PLcache's special load/store variants that set
  or clear the cache line's locking bit.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AccessContext:
    """Immutable description of who/how a memory access is performed."""

    thread_id: int = 0
    domain: int = 0
    critical: bool = False
    lock: bool = False
    unlock: bool = False
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.lock and self.unlock:
            raise ValueError("an access cannot both lock and unlock")


#: Default context for single-threaded, non-critical accesses.
DEFAULT_CONTEXT = AccessContext()
