"""Tests for replacement policies."""

import pytest

from repro.cache.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    make_policy,
)
from repro.cache.tagstore import LineState
from repro.util.rng import HardwareRng


def make_set(*lines):
    return [LineState(line) for line in lines]


class TestLru:
    def test_hit_moves_to_front(self):
        policy = LruPolicy()
        s = make_set(1, 2, 3)
        policy.on_hit(s, 2)
        assert [l.line_addr for l in s] == [3, 1, 2]

    def test_fill_inserts_mru(self):
        policy = LruPolicy()
        s = make_set(1, 2)
        policy.on_fill(s, LineState(9))
        assert s[0].line_addr == 9

    def test_victim_is_lru(self):
        policy = LruPolicy()
        s = make_set(1, 2, 3)
        assert policy.choose_victim(s, [0, 1, 2]) == 2

    def test_victim_respects_evictable(self):
        policy = LruPolicy()
        s = make_set(1, 2, 3)
        assert policy.choose_victim(s, [0, 1]) == 1

    def test_no_evictable_returns_none(self):
        policy = LruPolicy()
        assert policy.choose_victim(make_set(1), []) is None


class TestFifo:
    def test_hit_does_not_reorder(self):
        policy = FifoPolicy()
        s = make_set(1, 2, 3)
        policy.on_hit(s, 2)
        assert [l.line_addr for l in s] == [1, 2, 3]

    def test_victim_is_oldest(self):
        policy = FifoPolicy()
        s = make_set(1, 2, 3)
        assert policy.choose_victim(s, [0, 1, 2]) == 2


class TestRandom:
    def test_victim_among_evictable(self):
        policy = RandomPolicy(HardwareRng(5))
        s = make_set(1, 2, 3, 4)
        for _ in range(100):
            assert policy.choose_victim(s, [1, 3]) in (1, 3)

    def test_covers_all_candidates(self):
        policy = RandomPolicy(HardwareRng(6))
        s = make_set(1, 2, 3, 4)
        seen = {policy.choose_victim(s, [0, 1, 2, 3]) for _ in range(200)}
        assert seen == {0, 1, 2, 3}

    def test_empty_returns_none(self):
        policy = RandomPolicy(HardwareRng(7))
        assert policy.choose_victim(make_set(1), []) is None


class TestFactory:
    def test_lru(self):
        assert isinstance(make_policy("lru"), LruPolicy)

    def test_fifo(self):
        assert isinstance(make_policy("fifo"), FifoPolicy)

    def test_random_needs_rng(self):
        with pytest.raises(ValueError):
            make_policy("random")
        assert isinstance(make_policy("random", HardwareRng(1)), RandomPolicy)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_policy("plru")
